package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
)

// Thread ids within one engine track's process. Fixed small integers so
// trace viewers lay the rows out in a stable order.
const (
	tidCompute = 1 // systolic-array spans
	tidDMA     = 2 // transfer spans + spill instants
	tidSPM     = 3 // occupancy counter
	tidPhase   = 4 // kernel/GEMM phase spans
)

// WriteJSON renders the sink as Chrome trace-event JSON (the
// "JSON Array Format" with a traceEvents wrapper object), loadable in
// Perfetto and chrome://tracing. Engine tracks use the cycle domain (1 "us"
// == 1 core cycle); the global pid-0 track holds wall-clock runner events
// in real microseconds. Output is deterministic: tracks appear in creation
// order, events in emission order.
//
// Call only after the traced simulations have finished.
func (s *Sink) WriteJSON(w io.Writer) error {
	if s == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`+"\n")
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString("\n")
		fmt.Fprintf(bw, format, args...)
	}

	// Global wall-clock process.
	emit(`{"ph":"M","pid":0,"tid":0,"name":"process_name","args":{"name":"runner (wall clock)"}}`)
	for _, ev := range s.wall {
		switch ev.kind {
		case wallTask:
			emit(`{"ph":"X","pid":0,"tid":%d,"ts":%d,"dur":%d,"name":"task","args":{"index":%d}}`,
				ev.tid, ev.ts, ev.dur, ev.index)
		case wallMemoHit:
			emit(`{"ph":"i","pid":0,"tid":0,"ts":%d,"s":"p","name":"memo-hit","args":{"key":%s}}`,
				ev.ts, strconv.Quote(ev.name))
		}
	}

	// Engine tracks: one "process" per track, cycle domain.
	for _, t := range s.tracks {
		emit(`{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":%s}}`,
			t.pid, strconv.Quote(t.name))
		emit(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"compute"}}`, t.pid, tidCompute)
		emit(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"dma"}}`, t.pid, tidDMA)
		emit(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"spm"}}`, t.pid, tidSPM)
		emit(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"phases"}}`, t.pid, tidPhase)
		for i := range t.events {
			ev := &t.events[i]
			switch ev.kind {
			case evCompute:
				emit(`{"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":%d,"name":%s,"args":{"tm":%d,"tk":%d,"tn":%d}}`,
					t.pid, tidCompute, ev.ts, ev.dur, strconv.Quote(ev.name),
					ev.args[0], ev.args[1], ev.args[2])
			case evDMA:
				emit(`{"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":%d,"name":"xfer","args":{"fetchB":%d,"writeB":%d,"spillB":%d,"bursts":%d}}`,
					t.pid, tidDMA, ev.ts, ev.dur,
					ev.args[0], ev.args[1], ev.args[2], ev.args[3])
			case evSpill:
				emit(`{"ph":"i","pid":%d,"tid":%d,"ts":%d,"s":"t","name":"spill","args":{"bytes":%d}}`,
					t.pid, tidDMA, ev.ts, ev.args[0])
			case evOcc:
				emit(`{"ph":"C","pid":%d,"tid":%d,"ts":%d,"name":"spm-used","args":{"bytes":%d}}`,
					t.pid, tidSPM, ev.ts, ev.args[0])
			case evPhase:
				emit(`{"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":%d,"name":%s,"args":{}}`,
					t.pid, tidPhase, ev.ts, ev.dur, strconv.Quote(ev.name))
			}
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// StartCLI wires the CLIs' -trace/-report flags: when either asks for
// output it installs a fresh process-wide sink and returns a stop function
// that uninstalls it, validates the collected events and exports them (JSON
// to jsonPath, text report to stdout). With both flags off it is a no-op
// that leaves tracing disabled.
func StartCLI(jsonPath string, report bool) (stop func() error) {
	if jsonPath == "" && !report {
		return func() error { return nil }
	}
	sink := New()
	SetActive(sink)
	return func() error {
		SetActive(nil)
		if err := sink.Check(); err != nil {
			return err
		}
		var rw io.Writer
		if report {
			rw = os.Stdout
		}
		return sink.Export(jsonPath, rw)
	}
}

// Export is the CLI convenience wrapper: it writes the trace JSON to
// jsonPath (when non-empty) and the derived text report to report (when
// non-nil). A nil sink writes nothing and returns nil.
func (s *Sink) Export(jsonPath string, report io.Writer) error {
	if s == nil {
		return nil
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := s.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if report != nil {
		if _, err := io.WriteString(report, s.Metrics().Report()); err != nil {
			return err
		}
	}
	return nil
}
