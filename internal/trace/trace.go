// Package trace is the simulator's cycle-level observability layer: a
// zero-overhead-when-disabled event sink that the engine (internal/sim),
// the scratchpad (internal/spm), the schedule executors (internal/core) and
// the parallel runner (internal/runner) emit into.
//
// Two time domains coexist in one sink:
//
//   - engine tracks record *simulated* events — DMA and compute spans per
//     tile op, kernel phase spans, SPM occupancy samples — with timestamps
//     in core cycles;
//   - the sink's global track records *wall-clock* events — runner task
//     spans and memo-hit instants — with timestamps in microseconds since
//     the sink was created.
//
// The collected events export as Chrome trace-event JSON (loadable in
// Perfetto or chrome://tracing, see export.go) and reduce to a text report
// of stall attribution, occupancy high-water marks and per-tensor-class
// reuse distances (see metrics.go).
//
// # Overhead contract
//
// Tracing is *disabled* when the sink (or a track) pointer is nil. Every
// method on Sink and Track is nil-receiver safe and returns immediately in
// that case, so instrumented hot paths call unconditionally and pay one
// predictable branch — no allocations, no locks, no time reads. The
// contract is enforced by TestDisabledPathZeroAllocs (make trace-check).
package trace

import (
	"sync"
	"sync/atomic"
	"time"

	"igosim/internal/dram"
	"igosim/internal/schedule"
	"igosim/internal/stats"
)

// active is the process-wide sink consulted by the runner and by the core
// entry points when no sink was passed explicitly. nil means disabled.
var active atomic.Pointer[Sink]

// SetActive installs s as the process-wide active sink and returns the
// previous one. Pass nil to disable tracing.
func SetActive(s *Sink) *Sink {
	prev := active.Load()
	active.Store(s)
	return prev
}

// Active returns the process-wide active sink (nil when tracing is off).
func Active() *Sink { return active.Load() }

// Sink collects trace events for one run. Construct with New; a nil *Sink
// is the disabled tracer. Tracks hand out single-writer event buffers, so
// concurrent engines never contend; the sink's own mutex guards only track
// registration and the low-frequency wall-clock events.
type Sink struct {
	start time.Time

	mu      sync.Mutex
	nextPID int64
	tracks  []*Track
	wall    []wallEvent
}

// New creates an empty sink. The wall-clock origin of runner-task events is
// the moment of creation.
//
//lint:walldomain the sink's wall-clock origin feeds only the emitted trace file
func New() *Sink {
	return &Sink{start: time.Now(), nextPID: 1}
}

// Enabled reports whether the sink collects events.
func (s *Sink) Enabled() bool { return s != nil }

// wallEvent is one wall-clock-domain event on the sink's global track.
type wallEvent struct {
	kind    wallKind
	name    string
	tid     int64 // worker id for task spans
	ts, dur int64 // microseconds since sink start
	index   int64 // task index for task spans
}

type wallKind uint8

const (
	wallTask wallKind = iota
	wallMemoHit
)

// Task records one runner task span: worker executed item index from start
// to end (wall clock). Safe for concurrent use.
func (s *Sink) Task(worker, index int, begin, end time.Time) {
	if s == nil {
		return
	}
	ev := wallEvent{
		kind:  wallTask,
		name:  "task",
		tid:   int64(worker + 1),
		ts:    begin.Sub(s.start).Microseconds(),
		dur:   end.Sub(begin).Microseconds(),
		index: int64(index),
	}
	s.mu.Lock()
	s.wall = append(s.wall, ev)
	s.mu.Unlock()
}

// MemoHit records that a memoization cache served a simulation result
// instead of re-executing it (the span the trace would otherwise show).
// label names what was served (typically "model/layer").
//
//lint:walldomain memo-hit timestamps are wall-clock events on the emitted trace only
func (s *Sink) MemoHit(cache, label string) {
	if s == nil {
		return
	}
	ev := wallEvent{
		kind: wallMemoHit,
		name: cache + ":" + label,
		ts:   time.Since(s.start).Microseconds(),
	}
	s.mu.Lock()
	s.wall = append(s.wall, ev)
	s.mu.Unlock()
}

// evKind discriminates cycle-domain events within a track.
type evKind uint8

const (
	evCompute evKind = iota // systolic-array span; args: tm, tk, tn
	evDMA                   // transfer span; args: fetchB, writeB, spillB, bursts
	evSpill                 // pressure-spill instant; args: bytes
	evOcc                   // SPM occupancy counter; args: used bytes
	evPhase                 // kernel/GEMM phase span
)

// event is one cycle-domain event. name is always a pre-existing string
// (op-kind or schedule name), so emission never formats.
type event struct {
	kind    evKind
	name    string
	ts, dur int64
	args    [4]int64
}

// Track is a single-writer event stream for one simulated engine core (or
// one shared scratchpad). It doubles as the metrics accumulator: stall
// attribution, occupancy high-water mark and reuse-distance histograms are
// folded in at emission time so the report needs no event replay.
type Track struct {
	pid  int64
	name string

	events []event

	// Cycle-domain metrics.
	cycles      int64 // final compute completion (the track's makespan)
	computeBusy int64
	stallDMA    int64
	stallSpill  int64
	spills      int64
	spillBytes  int64
	ops         int64
	occHWM      int64
	occCap      int64
	lastOcc     int64

	// Reuse-distance bookkeeping: distance = tile accesses between
	// successive touches of the same tile key, per tensor class.
	accIdx     int64
	last       map[schedule.TileKey]int64
	reuse      [dram.NumClasses]stats.Histogram
	firstTouch int64
}

// classList fixes the tensor-class order of the reuse histograms.
var classList = dram.Classes()

// NewTrack registers a new engine track named name (shown as the process
// name in trace viewers). Returns nil — the disabled track — when s is nil.
func (s *Sink) NewTrack(name string) *Track {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	t := &Track{
		pid:  s.nextPID,
		name: name,
		last: make(map[schedule.TileKey]int64),
	}
	s.nextPID++
	s.tracks = append(s.tracks, t)
	s.mu.Unlock()
	return t
}

// SetCapacity records the byte capacity behind the track's occupancy
// samples (for high-water-mark reporting).
func (t *Track) SetCapacity(capacity int64) {
	if t == nil {
		return
	}
	t.occCap = capacity
}

// Compute emits a systolic-array span for one tile op of the given kind
// (schedule.Kind.String(), a constant) and advances the track makespan.
func (t *Track) Compute(kind string, start, dur int64, tm, tk, tn int) {
	if t == nil {
		return
	}
	t.ops++
	t.computeBusy += dur
	if end := start + dur; end > t.cycles {
		t.cycles = end
	}
	t.events = append(t.events, event{
		kind: evCompute, name: kind, ts: start, dur: dur,
		args: [4]int64{int64(tm), int64(tk), int64(tn)},
	})
}

// DMA emits a transfer span covering the op's fetches, write-backs and
// pressure spills. Zero-length transfers (fully resident ops) are elided.
func (t *Track) DMA(start, dur, fetchBytes, writeBytes, spillBytes int64, bursts int) {
	if t == nil || (dur == 0 && fetchBytes+writeBytes+spillBytes == 0) {
		return
	}
	t.events = append(t.events, event{
		kind: evDMA, name: "xfer", ts: start, dur: dur,
		args: [4]int64{fetchBytes, writeBytes, spillBytes, int64(bursts)},
	})
}

// Stall attributes the compute stage's wait before one op: dma cycles spent
// waiting on ordinary transfers, spill cycles waiting on pressure-spill
// write-backs. Per track, computeBusy + stallDMA + stallSpill always equals
// the track makespan — the reconciliation invariant the report and tests
// rely on.
func (t *Track) Stall(dma, spill int64) {
	if t == nil {
		return
	}
	t.stallDMA += dma
	t.stallSpill += spill
}

// Spill emits a pressure-spill instant: a live partial-sum tile of the
// given size was pushed to DRAM by scratchpad pressure.
func (t *Track) Spill(ts, bytes int64) {
	if t == nil {
		return
	}
	t.spills++
	t.spillBytes += bytes
	t.events = append(t.events, event{kind: evSpill, name: "spill", ts: ts, args: [4]int64{bytes}})
}

// Occupancy emits an SPM occupancy counter sample, deduplicated by value.
func (t *Track) Occupancy(ts, used int64) {
	if t == nil {
		return
	}
	if used > t.occHWM {
		t.occHWM = used
	}
	if used == t.lastOcc && len(t.events) > 0 {
		return
	}
	t.lastOcc = used
	t.events = append(t.events, event{kind: evOcc, name: "spm-used", ts: ts, args: [4]int64{used}})
}

// Access records one tile access for reuse-distance accounting. No event is
// emitted; re-touches land in the class's histogram with the distance (in
// tile accesses) since the previous touch of the same key.
func (t *Track) Access(k schedule.TileKey) {
	if t == nil {
		return
	}
	idx := t.accIdx
	t.accIdx++
	if prev, ok := t.last[k]; ok {
		c := int(k.Class)
		if c < len(t.reuse) {
			t.reuse[c].Add(idx - prev)
		}
	} else {
		t.firstTouch++
	}
	t.last[k] = idx
}

// Phase emits a kernel/GEMM phase span (for example "interleave+dXmajor" or
// "baseline-sequential") covering [start, end) cycles.
func (t *Track) Phase(name string, start, end int64) {
	if t == nil || end <= start {
		return
	}
	t.events = append(t.events, event{kind: evPhase, name: name, ts: start, dur: end - start})
}
