package trace

import "igosim/internal/metrics"

// ManifestSummary flattens the cycle-domain stall attribution into the run
// manifest's trace digest. Note the caveat on metrics.TraceSummary: under
// memoization the set of simulations that execute (and hence get traced)
// depends on cache state, so traced manifests are not byte-stable across -j.
func (m Metrics) ManifestSummary() metrics.TraceSummary {
	return metrics.TraceSummary{
		Cycles:      m.Cycles,
		ComputeBusy: m.ComputeBusy,
		StallDMA:    m.StallDMA,
		StallSpill:  m.StallSpill,
		Spills:      m.Spills,
		OccHWMBytes: m.OccHWM,
		OccCapBytes: m.OccCap,
	}
}
