// Tests live in trace_test because they drive the real engine (internal/sim
// imports trace, so an internal test package would cycle).
package trace_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/dram"
	"igosim/internal/runner"
	"igosim/internal/schedule"
	"igosim/internal/sim"
	"igosim/internal/tensor"
	"igosim/internal/trace"
)

// tinyCfg mirrors the scaled-down NPU the core tests use: small enough that
// a layer simulates in microseconds, small enough SPM that eviction and
// spill paths actually fire.
func tinyCfg() config.NPU {
	return config.NPU{
		Name: "tiny", ArrayRows: 8, ArrayCols: 8, Cores: 1,
		SPMBytes: 32 << 10, DRAMBandwidth: 8e9, DRAMLatency: 10,
		FrequencyHz: 1e9, ElemBytes: 4, Batch: 2,
	}
}

// TestDisabledPathZeroAllocs enforces the package's overhead contract: with
// tracing disabled (nil sink / nil track) every emission method must return
// without allocating. This is the `make trace-check` gate.
func TestDisabledPathZeroAllocs(t *testing.T) {
	var s *trace.Sink
	var tr *trace.Track
	key := schedule.TileKey{Class: dram.ClassDY}
	allocs := testing.AllocsPerRun(1000, func() {
		if s.Enabled() {
			t.Fatal("nil sink reports enabled")
		}
		if got := s.NewTrack("x"); got != nil {
			t.Fatal("nil sink built a track")
		}
		tr.SetCapacity(1 << 20)
		tr.Compute("dx", 0, 5, 8, 8, 8)
		tr.DMA(0, 3, 256, 0, 0, 1)
		tr.Stall(2, 1)
		tr.Spill(0, 256)
		tr.Occupancy(0, 512)
		tr.Access(key)
		tr.Phase("kernel", 0, 5)
		s.Task(0, 0, time.Time{}, time.Time{})
		s.MemoHit("cache", "label")
	})
	if allocs != 0 {
		t.Fatalf("disabled trace path allocates: %.1f allocs/op, want 0", allocs)
	}
}

// TestTracingDoesNotChangeResults is the bit-identity half of the overhead
// contract: the traced and untraced simulations must produce equal results.
func TestTracingDoesNotChangeResults(t *testing.T) {
	cfg := tinyCfg()
	p := core.LayerParams(tensor.Dims{M: 64, K: 48, N: 32}, 1, cfg)
	for _, sched := range []schedule.Schedule{
		core.InterleaveDXMajor(p),
		core.InterleaveDWMajor(p),
		core.InterleaveOnly(p),
	} {
		plain := sim.RunSchedules(cfg, sim.Options{}, sched)
		traced := sim.RunSchedules(cfg, sim.Options{Trace: trace.New(), TraceLabel: "t"}, sched)
		if plain != traced {
			t.Fatalf("%s: traced result differs:\nplain  %+v\ntraced %+v", sched.Name, plain, traced)
		}
	}
}

// TestReconciliation checks the headline invariant: the trace's stall
// attribution must account for every simulated cycle of the engine result —
// computeBusy + stallDMA + stallSpill == Result.Cycles, per track and in
// aggregate.
func TestReconciliation(t *testing.T) {
	cfg := tinyCfg()
	for _, d := range []tensor.Dims{
		{M: 64, K: 48, N: 32},
		{M: 16, K: 128, N: 16},
		{M: 128, K: 16, N: 96},
	} {
		p := core.LayerParams(d, 1, cfg)
		for _, sched := range []schedule.Schedule{
			core.InterleaveDXMajor(p),
			core.InterleaveDWMajor(p),
		} {
			sink := trace.New()
			res := sim.RunSchedules(cfg, sim.Options{Trace: sink, TraceLabel: "recon"}, sched)
			if err := sink.Check(); err != nil {
				t.Fatalf("%v %s: %v", d, sched.Name, err)
			}
			m := sink.Metrics()
			if got := m.ComputeBusy + m.StallDMA + m.StallSpill; got != res.Cycles {
				t.Fatalf("%v %s: attribution %d != makespan %d", d, sched.Name, got, res.Cycles)
			}
			if m.Cycles != res.Cycles {
				t.Fatalf("%v %s: trace makespan %d != result %d", d, sched.Name, m.Cycles, res.Cycles)
			}
			if m.Ops != res.Ops {
				t.Fatalf("%v %s: trace ops %d != result %d", d, sched.Name, m.Ops, res.Ops)
			}
			if m.Spills != res.Spills {
				t.Fatalf("%v %s: trace spills %d != result %d", d, sched.Name, m.Spills, res.Spills)
			}
			if m.OccHWM <= 0 || m.OccHWM > m.OccCap {
				t.Fatalf("%v %s: occupancy HWM %d outside (0, %d]", d, sched.Name, m.OccHWM, m.OccCap)
			}
		}
	}
}

// TestMultiCoreTraceReconciles exercises the shared-SPM multi-core path:
// per-core tracks plus one scratchpad occupancy track, each reconciling.
func TestMultiCoreTraceReconciles(t *testing.T) {
	cfg := tinyCfg()
	cfg.Cores = 2
	p := core.LayerParams(tensor.Dims{M: 64, K: 48, N: 32}, 1, cfg)
	a := core.InterleaveDXMajor(p)
	sink := trace.New()
	mr := sim.RunMulti(cfg, sim.Options{Trace: sink, TraceLabel: "mc"}, [][]schedule.Op{a.Ops, a.Ops})
	if err := sink.Check(); err != nil {
		t.Fatal(err)
	}
	m := sink.Metrics()
	if m.Tracks != 3 { // core0, core1, shared spm
		t.Fatalf("tracks = %d, want 3", m.Tracks)
	}
	var perCore int64
	for _, r := range mr.PerCore {
		perCore += r.Cycles
	}
	if got := m.ComputeBusy + m.StallDMA + m.StallSpill; got != perCore {
		t.Fatalf("attribution %d != summed per-core makespans %d", got, perCore)
	}
	if m.OccHWM <= 0 || m.OccCap != cfg.TotalSPMBytes()/2 {
		t.Fatalf("shared SPM occupancy HWM %d / cap %d", m.OccHWM, m.OccCap)
	}
}

// TestMemoHitEmitted verifies that a layer simulation served from the memo
// cache records a memo-hit wall event instead of engine spans.
func TestMemoHitEmitted(t *testing.T) {
	cfg := tinyCfg()
	core.ResetCaches()
	p := core.LayerParams(tensor.Dims{M: 48, K: 32, N: 48}, 7, cfg)
	sink := trace.New()
	opts := sim.Options{Trace: sink, TraceLabel: "memo-test"}
	core.RunBackwardOrder(cfg, opts, p, core.DXMajor) // cold: simulates, no hit
	if hits := sink.Metrics().MemoHits; hits != 0 {
		t.Fatalf("cold run recorded %d memo hits", hits)
	}
	core.RunBackwardOrder(cfg, opts, p, core.DXMajor) // warm: served
	if hits := sink.Metrics().MemoHits; hits != 1 {
		t.Fatalf("warm run recorded %d memo hits, want 1", hits)
	}
}

// TestParallelRunnerTrace drives traced simulations through the parallel
// runner the way the CLIs do (process-wide active sink, worker fan-out) and
// demands a complete, well-formed trace: runner task spans for every item,
// every engine track reconciled, and the JSON export parseable. Run under
// -race (make ci) this doubles as the concurrency-safety proof.
func TestParallelRunnerTrace(t *testing.T) {
	cfg := tinyCfg()
	sink := trace.New()
	prevSink := trace.SetActive(sink)
	defer trace.SetActive(prevSink)
	prevPar := runner.SetParallelism(8)
	defer runner.SetParallelism(prevPar)

	dims := make([]tensor.Dims, 24)
	for i := range dims {
		dims[i] = tensor.Dims{M: 32 + 8*(i%5), K: 32 + 8*(i%3), N: 32 + 8*(i%7)}
	}
	results := runner.Map(dims, func(d tensor.Dims) sim.Result {
		p := core.LayerParams(d, 1, cfg)
		return sim.RunSchedules(cfg,
			sim.Options{Trace: trace.Active(), TraceLabel: "par"},
			core.InterleaveDXMajor(p))
	})
	trace.SetActive(prevSink)

	if err := sink.Check(); err != nil {
		t.Fatal(err)
	}
	m := sink.Metrics()
	if m.Tasks != int64(len(dims)) {
		t.Fatalf("task spans = %d, want %d", m.Tasks, len(dims))
	}
	if m.Tracks != len(dims) {
		t.Fatalf("engine tracks = %d, want %d", m.Tracks, len(dims))
	}
	var want int64
	for _, r := range results {
		want += r.Cycles
	}
	if m.Cycles != want {
		t.Fatalf("trace cycles %d != summed results %d", m.Cycles, want)
	}

	var buf bytes.Buffer
	if err := sink.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("exported trace is empty")
	}
	for _, ev := range doc.TraceEvents {
		if _, ok := ev["ph"].(string); !ok {
			t.Fatalf("event without phase: %v", ev)
		}
		if _, ok := ev["name"].(string); !ok {
			t.Fatalf("event without name: %v", ev)
		}
	}
}

// TestNilSinkExport confirms the disabled exporters still emit valid output.
func TestNilSinkExport(t *testing.T) {
	var s *trace.Sink
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if err := s.Export("", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.Tracks != 0 || m.Cycles != 0 {
		t.Fatalf("nil sink metrics not zero: %+v", m)
	}
}

// TestReportRenders sanity-checks the text report against a traced run.
func TestReportRenders(t *testing.T) {
	cfg := tinyCfg()
	p := core.LayerParams(tensor.Dims{M: 64, K: 48, N: 32}, 1, cfg)
	sink := trace.New()
	sim.RunSchedules(cfg, sim.Options{Trace: sink, TraceLabel: "report"}, core.InterleaveDXMajor(p))
	rep := sink.Metrics().Report()
	for _, want := range []string{
		"=== trace report ===",
		"compute-busy",
		"dma-stall",
		"spill-stall",
		"SPM occupancy high-water",
		"reuse distance",
	} {
		if !bytes.Contains([]byte(rep), []byte(want)) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

// BenchmarkDisabledTraceCalls measures the per-op cost of the nil-receiver
// fast path (should be a handful of predicted branches).
func BenchmarkDisabledTraceCalls(b *testing.B) {
	var tr *trace.Track
	key := schedule.TileKey{Class: dram.ClassDY}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.DMA(0, 3, 256, 0, 0, 1)
		tr.Compute("dx", 0, 5, 8, 8, 8)
		tr.Stall(2, 1)
		tr.Access(key)
		tr.Occupancy(0, 512)
	}
}
