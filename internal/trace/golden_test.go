package trace_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/schedule"
	"igosim/internal/sim"
	"igosim/internal/tensor"
	"igosim/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden trace files")

// goldenCfg shrinks the scratchpad below the golden layer's working set so
// the recorded trace exercises every event kind: DMA and compute spans,
// occupancy samples, phase spans, and pressure-spill instants.
func goldenCfg() config.NPU {
	cfg := tinyCfg()
	cfg.Name = "golden"
	cfg.SPMBytes = 4 << 10
	return cfg
}

// TestGoldenTraceJSON locks the Chrome trace-event export byte-for-byte on
// a tiny layer under both access orders. Engine events live purely in the
// deterministic cycle domain, so the export must never drift unless the
// engine's timing model or the exporter changes — in which case regenerate
// with `go test ./internal/trace -run Golden -update` and review the diff.
func TestGoldenTraceJSON(t *testing.T) {
	cfg := goldenCfg()
	p := core.LayerParams(tensor.Dims{M: 32, K: 32, N: 32}, 1, cfg)
	for _, tc := range []struct {
		name  string
		build func(schedule.TileParams) schedule.Schedule
	}{
		{"dxmajor", core.InterleaveDXMajor},
		{"dwmajor", core.InterleaveDWMajor},
	} {
		sink := trace.New()
		res := sim.RunSchedules(cfg, sim.Options{Trace: sink, TraceLabel: "golden/" + tc.name}, tc.build(p))
		if err := sink.Check(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Spills == 0 {
			t.Fatalf("%s: golden workload no longer spills — shrink goldenCfg's SPM so the trace keeps covering spill events", tc.name)
		}
		var buf bytes.Buffer
		if err := sink.WriteJSON(&buf); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		path := filepath.Join("testdata", "trace_"+tc.name+".golden.json")
		if *update {
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden file (regenerate with -update): %v", tc.name, err)
		}
		if !bytes.Equal(want, buf.Bytes()) {
			t.Fatalf("%s: trace JSON drifted from %s (regenerate with -update and review)", tc.name, path)
		}
	}
}
