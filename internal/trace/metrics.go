package trace

import (
	"fmt"
	"strings"
	"time"

	"igosim/internal/dram"
	"igosim/internal/stats"
)

// Metrics is the derived summary of a traced run: stall-cycle attribution,
// scratchpad occupancy high-water marks and per-tensor-class reuse
// distances, aggregated over every engine track in the sink.
type Metrics struct {
	// Tracks counts engine tracks (one per simulated core or shared SPM).
	Tracks int
	// Ops counts tile operations executed across all tracks.
	Ops int64

	// Cycles is the sum of per-track makespans. It always equals
	// ComputeBusy + StallDMA + StallSpill (the reconciliation invariant).
	Cycles int64
	// ComputeBusy is the cycles the systolic arrays spent computing.
	ComputeBusy int64
	// StallDMA is the cycles compute stalled waiting on ordinary DMA
	// transfers (operand fetches and output drains).
	StallDMA int64
	// StallSpill is the cycles compute stalled waiting on pressure-spill
	// write-backs of live partial sums.
	StallSpill int64

	// Spills and SpillBytes count live partial-sum tiles pushed to DRAM.
	Spills     int64
	SpillBytes int64

	// OccHWM is the highest SPM occupancy sampled on any track; OccCap is
	// that track's capacity and OccTrack its name.
	OccHWM   int64
	OccCap   int64
	OccTrack string

	// Reuse holds one reuse-distance histogram per tensor class (indexed in
	// dram.Classes() order): the tile accesses between successive touches of
	// the same tile. FirstTouches counts cold first accesses.
	Reuse        [dram.NumClasses]stats.Histogram
	FirstTouches int64

	// MemoHits counts simulations served from memo caches instead of being
	// re-executed (their spans are absent from the trace by design).
	MemoHits int64
	// Tasks and TaskWall summarise the runner's wall-clock task spans.
	Tasks    int64
	TaskWall time.Duration
}

// Metrics reduces the sink's tracks to a Metrics summary. A nil sink
// returns the zero Metrics. Call only after traced simulations finished.
func (s *Sink) Metrics() Metrics {
	if s == nil {
		return Metrics{}
	}
	var m Metrics
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.tracks {
		m.Tracks++
		m.Ops += t.ops
		m.Cycles += t.cycles
		m.ComputeBusy += t.computeBusy
		m.StallDMA += t.stallDMA
		m.StallSpill += t.stallSpill
		m.Spills += t.spills
		m.SpillBytes += t.spillBytes
		m.FirstTouches += t.firstTouch
		for c := range t.reuse {
			m.Reuse[c].Merge(&t.reuse[c])
		}
		if t.occHWM > m.OccHWM {
			m.OccHWM = t.occHWM
			m.OccCap = t.occCap
			m.OccTrack = t.name
		}
	}
	for _, ev := range s.wall {
		switch ev.kind {
		case wallTask:
			m.Tasks++
			m.TaskWall += time.Duration(ev.dur) * time.Microsecond
		case wallMemoHit:
			m.MemoHits++
		}
	}
	return m
}

// share formats part as a percentage of total.
func share(part, total int64) string {
	if total <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(total))
}

// Report renders the metrics as the text report the CLIs print for
// -report: stall attribution, occupancy and reuse-distance tables.
func (m Metrics) Report() string {
	var b strings.Builder
	b.WriteString("=== trace report ===\n")
	fmt.Fprintf(&b, "engine tracks %d, tile ops %d, memo hits %d, runner tasks %d (wall %s)\n\n",
		m.Tracks, m.Ops, m.MemoHits, m.Tasks, m.TaskWall.Round(time.Microsecond))

	b.WriteString("stall attribution (cycle domain, summed over engine tracks)\n")
	at := stats.NewTable("component", "cycles", "share")
	at.AddRow("compute-busy", fmt.Sprintf("%d", m.ComputeBusy), share(m.ComputeBusy, m.Cycles))
	at.AddRow("dma-stall", fmt.Sprintf("%d", m.StallDMA), share(m.StallDMA, m.Cycles))
	at.AddRow("spill-stall", fmt.Sprintf("%d", m.StallSpill), share(m.StallSpill, m.Cycles))
	at.AddRow("total", fmt.Sprintf("%d", m.Cycles), share(m.Cycles, m.Cycles))
	b.WriteString(at.String())

	fmt.Fprintf(&b, "\npressure spills: %d tiles, %d bytes\n", m.Spills, m.SpillBytes)
	if m.OccCap > 0 {
		fmt.Fprintf(&b, "SPM occupancy high-water: %d / %d bytes (%s) on track %q\n",
			m.OccHWM, m.OccCap, share(m.OccHWM, m.OccCap), m.OccTrack)
	}

	fmt.Fprintf(&b, "\nreuse distance (tile accesses between touches; %d first touches)\n", m.FirstTouches)
	rt := stats.NewTable("class", "reuses", "mean", "p50", "p99", "max")
	for c, cls := range classList {
		h := &m.Reuse[c]
		if h.Count() == 0 {
			continue
		}
		rt.AddRow(cls.String(),
			fmt.Sprintf("%d", h.Count()),
			fmt.Sprintf("%.1f", h.Mean()),
			fmt.Sprintf("%d", h.Quantile(0.5)),
			fmt.Sprintf("%d", h.Quantile(0.99)),
			fmt.Sprintf("%d", h.Max()))
	}
	b.WriteString(rt.String())
	return b.String()
}

// Check validates the sink's internal invariants; tests use it to prove
// traces are complete and well-formed:
//
//   - every track reconciles: computeBusy + stallDMA + stallSpill equals the
//     track makespan (no simulated cycle is unattributed);
//   - every event has non-negative timestamp and duration;
//   - occupancy samples never exceed the track's declared capacity.
func (s *Sink) Check() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.tracks {
		if got := t.computeBusy + t.stallDMA + t.stallSpill; got != t.cycles {
			return fmt.Errorf("trace: track %q does not reconcile: busy %d + dma %d + spill %d = %d, makespan %d",
				t.name, t.computeBusy, t.stallDMA, t.stallSpill, got, t.cycles)
		}
		for i := range t.events {
			ev := &t.events[i]
			if ev.ts < 0 || ev.dur < 0 {
				return fmt.Errorf("trace: track %q event %d (%s) has negative time ts=%d dur=%d",
					t.name, i, ev.name, ev.ts, ev.dur)
			}
			if ev.kind == evOcc && t.occCap > 0 && ev.args[0] > t.occCap {
				return fmt.Errorf("trace: track %q occupancy %d exceeds capacity %d",
					t.name, ev.args[0], t.occCap)
			}
		}
	}
	for _, ev := range s.wall {
		if ev.ts < 0 || ev.dur < 0 {
			return fmt.Errorf("trace: wall event %q has negative time ts=%d dur=%d", ev.name, ev.ts, ev.dur)
		}
	}
	return nil
}
