package bench

import (
	"testing"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/dse"
	"igosim/internal/sim"
	"igosim/internal/workload"
)

// SweepSpace is the canonical design-space-exploration workload: BERT-tiny
// on the small NPU over a dense log-spaced bandwidth axis, two scratchpad
// sizes, two tiling caps and the baseline/partitioned policy pair. Dense
// single-axis neighborhoods plus the baseline policy's zero reduction cap
// are where the analytic pruner earns its keep, so this grid exercises the
// pruned and simulated paths in realistic proportion (a few hundred points,
// seconds of wall time).
func SweepSpace() dse.Space {
	s := dse.Space{
		Model:    workload.BERTTiny(),
		Base:     config.SmallNPU(),
		Cores:    []int{1},
		SPMMiB:   []float64{2, 4},
		TkCaps:   []int{0, 64},
		Policies: []core.Policy{core.PolBaseline, core.PolPartition},
	}
	s.BWGBs = logAxis(16, 256, 30)
	return s
}

// logAxis returns n log-spaced points from lo to hi inclusive, computed
// with integer-exponent arithmetic only so the axis is bit-stable across
// platforms (no math.Pow of a data-dependent exponent).
func logAxis(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	ratio := rootN(hi/lo, n-1)
	v := lo
	for i := range out {
		out[i] = v
		v *= ratio
	}
	out[n-1] = hi
	return out
}

// rootN computes x^(1/n) by bisection to full float precision.
func rootN(x float64, n int) float64 {
	lo, hi := 1.0, x
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		p := 1.0
		for j := 0; j < n; j++ {
			p *= mid
		}
		if p < x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// SweepResult is the summary cmd/benchjson serializes as BENCH_sweep.json.
// Resolutions and Replays describe the two-phase executor's work split
// over the sweep (DESIGN.md §3l). Resolutions is the residency cache's
// distinct-key census — the number of logical (program, capacity, policy)
// traces the grid needs — which is parallelism-independent and gated
// exactly. Replays counts replay events, which can lose a few to
// miss races under -j (two workers resolving one key), so it is gated as
// wall. ReuseRatio is replays per resolution — the factor the residency
// cache saves on the grid.
type SweepResult struct {
	Points       int     `json:"points"`
	Simulated    int     `json:"simulated"`
	PrunedFrac   float64 `json:"pruned_fraction"`
	PointsPerSec float64 `json:"points_per_sec"`
	WallSeconds  float64 `json:"wall_seconds"`
	FrontierSize int     `json:"frontier_size"`
	Resolutions  int64   `json:"resolutions"`
	Replays      int64   `json:"replays"`
	ReuseRatio   float64 `json:"reuse_ratio"`
}

// RunSweep executes the canonical sweep once with pruning at the default
// relaxations and summarizes it; wallSeconds comes from the caller so this
// package stays wall-clock free. Caches are dropped first so the
// resolution/replay counts describe this sweep alone, cold, reproducibly.
func RunSweep(wallSeconds float64) (SweepResult, error) {
	core.ResetCaches()
	before := sim.ResolvedPhaseStats()
	space := SweepSpace()
	res, err := dse.Run(space, dse.Options{Prune: true, Eps: -1, EpsRed: -1})
	if err != nil {
		return SweepResult{}, err
	}
	after := sim.ResolvedPhaseStats()
	out := SweepResult{
		Points:       space.Size(),
		Simulated:    res.Simulated,
		WallSeconds:  wallSeconds,
		FrontierSize: len(res.Frontier),
		Resolutions:  sim.ResolvedCacheStats().Entries,
		Replays:      after.Replays - before.Replays,
	}
	if out.Resolutions > 0 {
		out.ReuseRatio = float64(out.Replays) / float64(out.Resolutions)
	}
	if n := len(res.Rows); n > 0 {
		out.PrunedFrac = float64(res.Pruned) / float64(n)
	}
	if wallSeconds > 0 {
		out.PointsPerSec = float64(space.Size()) / wallSeconds
	}
	return out, nil
}

// SweepPruned returns a benchmark body running the canonical pruned sweep
// end to end, reporting throughput (points/s) and the pruned fraction.
func SweepPruned() func(*testing.B) {
	space := SweepSpace()
	total := space.Size()
	return func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		var res dse.Result
		for i := 0; i < b.N; i++ {
			var err error
			res, err = dse.Run(space, dse.Options{Prune: true, Eps: -1, EpsRed: -1})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		secs := b.Elapsed().Seconds() / float64(b.N)
		if secs > 0 {
			b.ReportMetric(float64(total)/secs, "points/s")
		}
		b.ReportMetric(100*float64(res.Pruned)/float64(total), "pruned_%")
	}
}
