// Package bench defines the repo's end-to-end performance workload — the
// ResNet-50 backward pass on the large NPU configuration — as reusable
// *testing.B bodies. The same functions back BenchmarkCompiledEngine in
// internal/sim (run via `go test -bench`) and cmd/benchjson (which runs
// them through testing.Benchmark and writes BENCH_compiled.json), so the
// numbers tracked across PRs are the numbers the benchmark suite measures.
package bench

import (
	"fmt"
	"reflect"
	"testing"

	"igosim/internal/config"
	"igosim/internal/core"
	"igosim/internal/schedule"
	"igosim/internal/sim"
	"igosim/internal/workload"
)

// Workload is one benchmarkable model: per-layer kernel sets plus the
// simulated DRAM traffic of a full pass (the b.SetBytes denominator).
type Workload struct {
	Cfg   config.NPU
	Model [][]schedule.Schedule
	Bytes int64
}

// ResNet50Backward lowers the acceptance workload: every ResNet-50 layer's
// conventional dX and dW kernels on the large NPU configuration.
func ResNet50Backward() Workload {
	cfg := config.LargeNPU()
	m := workload.ResNet50()
	layers := m.Layers(cfg.Batch)
	w := Workload{Cfg: cfg, Model: make([][]schedule.Schedule, 0, len(layers))}
	for li, l := range layers {
		p := core.LayerParams(l.Dims, uint16(li+1), cfg)
		kernels := []schedule.Schedule{
			{Name: "dx", Ops: schedule.BaselineDX(p)},
			{Name: "dw", Ops: schedule.BaselineDW(p)},
		}
		if l.SkipDX {
			kernels = kernels[1:]
		}
		w.Model = append(w.Model, kernels)
	}
	for _, kernels := range w.Model {
		r := sim.RunSchedules(cfg, sim.Options{}, kernels...)
		w.Bytes += r.Traffic.TotalRead() + r.Traffic.TotalWrite()
	}
	return w
}

// Verify checks the two engines agree on every layer before their speeds
// are worth comparing.
func (w Workload) Verify() error {
	for i, kernels := range w.Model {
		want := sim.RunSchedules(w.Cfg, sim.Options{Compiled: sim.EngineInterpreted}, kernels...)
		got := sim.RunSchedules(w.Cfg, sim.Options{Compiled: sim.EngineCompiled}, kernels...)
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("bench: layer %d: compiled result diverged from interpreter: %+v != %+v", i, got, want)
		}
	}
	return nil
}

// Pass returns a benchmark body measuring full passes (lower + execute)
// through RunSchedules on the chosen engine.
func (w Workload) Pass(mode sim.EngineChoice) func(*testing.B) {
	return func(b *testing.B) {
		opts := sim.Options{Compiled: mode}
		b.SetBytes(w.Bytes) // simulated DRAM bytes per full backward pass
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, kernels := range w.Model {
				if r := sim.RunSchedules(w.Cfg, opts, kernels...); r.Ops == 0 {
					b.Fatal("empty result")
				}
			}
		}
	}
}

// Steady returns a benchmark body for the compiled steady state: programs
// lowered once outside the loop, execution only inside it.
func (w Workload) Steady() func(*testing.B) {
	return func(b *testing.B) {
		progs := make([]schedule.Program, len(w.Model))
		for i, kernels := range w.Model {
			progs[i] = schedule.Compile(kernels...)
		}
		e := sim.NewCompiledEngine(w.Cfg, sim.Options{})
		b.SetBytes(w.Bytes)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for pi := range progs {
				e.Reset()
				e.RunProgram(&progs[pi])
				if e.Result().Ops == 0 {
					b.Fatal("empty result")
				}
			}
		}
	}
}
