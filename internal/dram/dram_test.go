package dram

import (
	"math"
	"testing"
)

func TestTrafficAccounting(t *testing.T) {
	var tr Traffic
	tr.AddRead(ClassDY, 100)
	tr.AddRead(ClassX, 50)
	tr.AddWrite(ClassDW, 30)
	if tr.TotalRead() != 150 || tr.TotalWrite() != 30 || tr.Total() != 180 {
		t.Fatalf("totals = %d/%d/%d", tr.TotalRead(), tr.TotalWrite(), tr.Total())
	}
	if got := tr.ReadShare(ClassDY); math.Abs(got-100.0/150) > 1e-12 {
		t.Fatalf("read share = %g", got)
	}
	if got := tr.Share(ClassDY); math.Abs(got-100.0/180) > 1e-12 {
		t.Fatalf("rw share = %g", got)
	}
}

func TestTrafficMerge(t *testing.T) {
	var a, b Traffic
	a.AddRead(ClassW, 10)
	b.AddRead(ClassW, 5)
	b.AddWrite(ClassAcc, 7)
	a.Merge(b)
	if a.Read[ClassW] != 15 || a.Write[ClassAcc] != 7 {
		t.Fatalf("merge result %+v", a)
	}
}

func TestSharesOnEmptyTraffic(t *testing.T) {
	var tr Traffic
	if tr.ReadShare(ClassDY) != 0 || tr.Share(ClassDY) != 0 {
		t.Fatal("empty traffic should have zero shares")
	}
}

func TestClassStrings(t *testing.T) {
	want := map[Class]string{
		ClassX: "X", ClassW: "W", ClassY: "Y",
		ClassDY: "dY", ClassDX: "dX", ClassDW: "dW", ClassAcc: "acc",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%v.String() = %q, want %q", uint8(c), c.String(), s)
		}
	}
	if Class(99).String() == "" {
		t.Error("unknown class should still format")
	}
}

func TestClassesCoverAll(t *testing.T) {
	if len(Classes()) != int(numClasses) {
		t.Fatalf("Classes() lists %d of %d", len(Classes()), numClasses)
	}
	seen := make(map[Class]bool)
	for _, c := range Classes() {
		if seen[c] {
			t.Fatalf("duplicate class %v", c)
		}
		seen[c] = true
	}
}

func TestChannelTransferCycles(t *testing.T) {
	ch := Channel{BytesPerCycle: 100, BurstLatency: 10}
	// 1000 bytes in 2 bursts: 10 stream cycles + 20 latency.
	if got := ch.TransferCycles(1000, 2); got != 30 {
		t.Fatalf("cycles = %d, want 30", got)
	}
	if got := ch.TransferCycles(0, 5); got != 0 {
		t.Fatalf("zero bytes should cost nothing, got %d", got)
	}
}

func TestChannelRounding(t *testing.T) {
	ch := Channel{BytesPerCycle: 3}
	// 10 bytes / 3 Bpc = 3.33 -> rounds to 3.
	if got := ch.TransferCycles(10, 0); got != 3 {
		t.Fatalf("cycles = %d, want 3", got)
	}
}

func TestChannelNoBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero-bandwidth channel")
		}
	}()
	Channel{}.TransferCycles(1, 1)
}
