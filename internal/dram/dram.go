// Package dram models the off-chip memory of the NPU: a bandwidth-limited
// channel with a fixed per-burst latency, plus traffic accounting broken
// down by tensor class and direction. The traffic counters feed the
// Figure 5 and Figure 13 reproductions directly.
package dram

import "fmt"

// Class identifies which logical tensor a transfer belongs to.
type Class uint8

const (
	ClassX   Class = iota // input feature map
	ClassW                // weights
	ClassY                // output feature map (forward)
	ClassDY               // output gradient
	ClassDX               // input gradient
	ClassDW               // weight gradient
	ClassAcc              // spilled partial sums (intermediate results)
	numClasses
)

// NumClasses counts the tensor classes — the length for fixed-size
// per-class arrays outside this package (e.g. trace reuse histograms).
const NumClasses = int(numClasses)

func (c Class) String() string {
	switch c {
	case ClassX:
		return "X"
	case ClassW:
		return "W"
	case ClassY:
		return "Y"
	case ClassDY:
		return "dY"
	case ClassDX:
		return "dX"
	case ClassDW:
		return "dW"
	case ClassAcc:
		return "acc"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Classes lists all tensor classes in a stable order.
func Classes() []Class {
	return []Class{ClassX, ClassW, ClassY, ClassDY, ClassDX, ClassDW, ClassAcc}
}

// Traffic accumulates DRAM bytes moved, by class and direction.
type Traffic struct {
	Read  [numClasses]int64
	Write [numClasses]int64
}

// AddRead records bytes read from DRAM for the given class.
func (t *Traffic) AddRead(c Class, bytes int64) { t.Read[c] += bytes }

// AddWrite records bytes written to DRAM for the given class.
func (t *Traffic) AddWrite(c Class, bytes int64) { t.Write[c] += bytes }

// TotalRead returns all bytes read.
func (t Traffic) TotalRead() int64 {
	var s int64
	for _, v := range t.Read {
		s += v
	}
	return s
}

// TotalWrite returns all bytes written.
func (t Traffic) TotalWrite() int64 {
	var s int64
	for _, v := range t.Write {
		s += v
	}
	return s
}

// Total returns all bytes moved in either direction.
func (t Traffic) Total() int64 { return t.TotalRead() + t.TotalWrite() }

// Merge adds other's counters into t.
func (t *Traffic) Merge(other Traffic) {
	for i := range t.Read {
		t.Read[i] += other.Read[i]
		t.Write[i] += other.Write[i]
	}
}

// ReadShare returns class c's fraction of total read traffic.
func (t Traffic) ReadShare(c Class) float64 {
	tot := t.TotalRead()
	if tot == 0 {
		return 0
	}
	return float64(t.Read[c]) / float64(tot)
}

// Share returns class c's fraction of total read+write traffic.
func (t Traffic) Share(c Class) float64 {
	tot := t.Total()
	if tot == 0 {
		return 0
	}
	return float64(t.Read[c]+t.Write[c]) / float64(tot)
}

// Channel converts transfer sizes into cycles given bandwidth and latency.
type Channel struct {
	BytesPerCycle float64 // sustained bandwidth in bytes per core cycle
	BurstLatency  int64   // fixed cycles charged once per tile transfer
}

// TransferCycles returns the cycles to move `bytes` in `bursts` contiguous
// tile transfers.
func (ch Channel) TransferCycles(bytes int64, bursts int) int64 {
	if bytes <= 0 {
		return 0
	}
	if ch.BytesPerCycle <= 0 {
		panic("dram: channel has no bandwidth")
	}
	stream := int64(float64(bytes)/ch.BytesPerCycle + 0.5)
	return stream + ch.BurstLatency*int64(bursts)
}
