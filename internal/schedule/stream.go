package schedule

// OpStream is a pull-based tile-op iterator: calling the stream drives the
// generator's loop nest, invoking yield once per op in schedule order. The
// op pointer is only valid for the duration of the yield call (generators
// reuse the backing storage), so consumers that retain ops must copy them.
// Returning false from yield aborts generation immediately — the generator
// unwinds without producing the remaining ops and without leaking any
// buffers (generators hold no pooled state).
//
// Streams exist so that executing or compiling a schedule does not require
// materializing the full []Op first: peak memory stays constant in the op
// count. The eager generators (Forward, BaselineDX, PartialStationary*, …)
// are thin Collect wrappers over their stream forms.
type OpStream func(yield func(*Op) bool)

// Collect materializes a stream. sizeHint pre-sizes the slice (pass the
// exact op count when known; values <= 0 mean unknown).
func Collect(s OpStream, sizeHint int) []Op {
	ops := make([]Op, 0, max(sizeHint, 0))
	s(func(op *Op) bool {
		ops = append(ops, *op)
		return true
	})
	return ops
}

// Concat chains streams: each runs to completion before the next starts,
// and an abort in any stream aborts the rest.
func Concat(streams ...OpStream) OpStream {
	return func(yield func(*Op) bool) {
		done := false
		for _, s := range streams {
			if done {
				return
			}
			s(func(op *Op) bool {
				if !yield(op) {
					done = true
				}
				return !done
			})
		}
	}
}

// OpCount returns the number of ops any single-GEMM generator emits for p:
// one op per tile-grid point.
func (p TileParams) OpCount() int {
	mt, kt, nt := p.Tiling.Counts(p.Dims)
	return mt * kt * nt
}

// ForwardStream is the stream form of Forward.
func ForwardStream(p TileParams) OpStream {
	return func(yield func(*Op) bool) {
		mt, kt, nt := p.Tiling.Counts(p.Dims)
		for mo := 0; mo < mt; mo++ {
			for no := 0; no < nt; no++ {
				for ko := 0; ko < kt; ko++ {
					op := Op{
						A:        p.XTile(mo, ko),
						B:        p.WTile(ko, no),
						Out:      p.YTile(mo, no),
						Tm:       clip(mo, p.Tiling.Tm, p.Dims.M),
						Tk:       clip(ko, p.Tiling.Tk, p.Dims.K),
						Tn:       clip(no, p.Tiling.Tn, p.Dims.N),
						OutFirst: ko == 0,
						OutLast:  ko == kt-1,
						Kind:     KindFwd,
					}
					if !yield(&op) {
						return
					}
				}
			}
		}
	}
}

// BaselineDXStream is the stream form of BaselineDXOrdered.
func BaselineDXStream(p TileParams, order DXLoopOrder) OpStream {
	return func(yield func(*Op) bool) {
		mt, kt, nt := p.Tiling.Counts(p.Dims)
		if order == DXOrderMK {
			for mo := 0; mo < mt; mo++ {
				for ko := 0; ko < kt; ko++ {
					for no := 0; no < nt; no++ {
						op := p.DXOp(mo, ko, no, nt)
						if !yield(&op) {
							return
						}
					}
				}
			}
			return
		}
		for ko := 0; ko < kt; ko++ {
			for mo := 0; mo < mt; mo++ {
				for no := 0; no < nt; no++ {
					op := p.DXOp(mo, ko, no, nt)
					if !yield(&op) {
						return
					}
				}
			}
		}
	}
}

// BaselineDWStream is the stream form of BaselineDWOrdered.
func BaselineDWStream(p TileParams, order DWLoopOrder) OpStream {
	return func(yield func(*Op) bool) {
		mt, kt, nt := p.Tiling.Counts(p.Dims)
		if order == DWOrderKN {
			for ko := 0; ko < kt; ko++ {
				for no := 0; no < nt; no++ {
					for mo := 0; mo < mt; mo++ {
						op := p.DWOp(ko, no, mo, mt)
						if !yield(&op) {
							return
						}
					}
				}
			}
			return
		}
		for no := 0; no < nt; no++ {
			for ko := 0; ko < kt; ko++ {
				for mo := 0; mo < mt; mo++ {
					op := p.DWOp(ko, no, mo, mt)
					if !yield(&op) {
						return
					}
				}
			}
		}
	}
}

// BaselineBackwardStream is the stream form of BaselineBackwardOrdered: the
// full dX GEMM followed by the full dW GEMM as one unflushed stream.
func BaselineBackwardStream(p TileParams, dxo DXLoopOrder, dwo DWLoopOrder) OpStream {
	return Concat(BaselineDXStream(p, dxo), BaselineDWStream(p, dwo))
}

// PartialStationaryDXStream is the stream form of PartialStationaryDX.
func PartialStationaryDXStream(p TileParams, chunkRows int) OpStream {
	return func(yield func(*Op) bool) {
		mt, kt, nt := p.Tiling.Counts(p.Dims)
		chunk := clampChunk(chunkRows, mt)
		for mc := 0; mc < mt; mc += chunk {
			hi := min(mc+chunk, mt)
			for no := 0; no < nt; no++ {
				for mo := mc; mo < hi; mo++ {
					for ko := 0; ko < kt; ko++ {
						op := p.DXOp(mo, ko, no, nt)
						if !yield(&op) {
							return
						}
					}
				}
			}
		}
	}
}

// PartialStationaryDXColsStream is the stream form of PartialStationaryDXCols.
func PartialStationaryDXColsStream(p TileParams, chunkCols int) OpStream {
	return func(yield func(*Op) bool) {
		mt, kt, nt := p.Tiling.Counts(p.Dims)
		chunk := clampChunk(chunkCols, kt)
		for kc := 0; kc < kt; kc += chunk {
			hi := min(kc+chunk, kt)
			for no := 0; no < nt; no++ {
				for ko := kc; ko < hi; ko++ {
					for mo := 0; mo < mt; mo++ {
						op := p.DXOp(mo, ko, no, nt)
						if !yield(&op) {
							return
						}
					}
				}
			}
		}
	}
}

// PartialStationaryDWStream is the stream form of PartialStationaryDW.
func PartialStationaryDWStream(p TileParams, chunkRows int) OpStream {
	return func(yield func(*Op) bool) {
		mt, kt, nt := p.Tiling.Counts(p.Dims)
		chunk := clampChunk(chunkRows, kt)
		for kc := 0; kc < kt; kc += chunk {
			hi := min(kc+chunk, kt)
			for mo := 0; mo < mt; mo++ {
				for ko := kc; ko < hi; ko++ {
					for no := 0; no < nt; no++ {
						op := p.DWOp(ko, no, mo, mt)
						if !yield(&op) {
							return
						}
					}
				}
			}
		}
	}
}

// PartialStationaryDWColsStream is the stream form of PartialStationaryDWCols.
func PartialStationaryDWColsStream(p TileParams, chunkCols int) OpStream {
	return func(yield func(*Op) bool) {
		mt, kt, nt := p.Tiling.Counts(p.Dims)
		chunk := clampChunk(chunkCols, nt)
		for nc := 0; nc < nt; nc += chunk {
			hi := min(nc+chunk, nt)
			for mo := 0; mo < mt; mo++ {
				for no := nc; no < hi; no++ {
					for ko := 0; ko < kt; ko++ {
						op := p.DWOp(ko, no, mo, mt)
						if !yield(&op) {
							return
						}
					}
				}
			}
		}
	}
}
