package schedule

// Chunked partial-stationary loop orders: the multi-level tilings of the
// prior scheduling studies the paper's baseline includes (GAMMA, Moon et
// al.). The output is processed in chunks whose partial sums stay resident
// in SPM while the reduction dimension runs in a middle loop; operand bands
// are then streamed once per chunk instead of once per output tile row.
// These orders complete each output tile only after the full reduction, so
// they emit exactly the same op multiset as the reduction-inner orders.
//
// The loop nests live in the stream generators (stream.go); the functions
// here materialize them for callers that need a slice.

// clampChunk bounds a chunk size (in tiles) to [1, total].
func clampChunk(chunk, total int) int {
	if chunk < 1 {
		return 1
	}
	if chunk > total {
		return total
	}
	return chunk
}

// PartialStationaryDX generates the dX GEMM with row-chunked partials:
//
//	for each chunk of dX tile-rows:
//	    for no (reduction): for mo in chunk: for ko: dX(mo,ko) += ...
//
// dY is read once per layer, W once per chunk; the live partials are
// chunkRows x K.
func PartialStationaryDX(p TileParams, chunkRows int) []Op {
	return Collect(PartialStationaryDXStream(p, chunkRows), p.OpCount())
}

// PartialStationaryDXCols generates the dX GEMM with column-chunked
// partials (chunks over K): W is read once per layer, dY once per chunk;
// the live partials are M x chunkCols.
func PartialStationaryDXCols(p TileParams, chunkCols int) []Op {
	return Collect(PartialStationaryDXColsStream(p, chunkCols), p.OpCount())
}

// PartialStationaryDW generates the dW GEMM with row-chunked partials
// (chunks over K): X is read once per layer, dY once per chunk; the live
// partials are chunkRows x N.
func PartialStationaryDW(p TileParams, chunkRows int) []Op {
	return Collect(PartialStationaryDWStream(p, chunkRows), p.OpCount())
}

// PartialStationaryDWCols generates the dW GEMM with column-chunked
// partials (chunks over N): dY is read once per layer, X once per chunk;
// the live partials are K x chunkCols.
func PartialStationaryDWCols(p TileParams, chunkCols int) []Op {
	return Collect(PartialStationaryDWColsStream(p, chunkCols), p.OpCount())
}
