package schedule

// Chunked partial-stationary loop orders: the multi-level tilings of the
// prior scheduling studies the paper's baseline includes (GAMMA, Moon et
// al.). The output is processed in chunks whose partial sums stay resident
// in SPM while the reduction dimension runs in a middle loop; operand bands
// are then streamed once per chunk instead of once per output tile row.
// These orders complete each output tile only after the full reduction, so
// they emit exactly the same op multiset as the reduction-inner orders.

// clampChunk bounds a chunk size (in tiles) to [1, total].
func clampChunk(chunk, total int) int {
	if chunk < 1 {
		return 1
	}
	if chunk > total {
		return total
	}
	return chunk
}

// PartialStationaryDX generates the dX GEMM with row-chunked partials:
//
//	for each chunk of dX tile-rows:
//	    for no (reduction): for mo in chunk: for ko: dX(mo,ko) += ...
//
// dY is read once per layer, W once per chunk; the live partials are
// chunkRows x K.
func PartialStationaryDX(p TileParams, chunkRows int) []Op {
	mt, kt, nt := p.Tiling.Counts(p.Dims)
	chunkRows = clampChunk(chunkRows, mt)
	ops := make([]Op, 0, mt*kt*nt)
	for mc := 0; mc < mt; mc += chunkRows {
		hi := min(mc+chunkRows, mt)
		for no := 0; no < nt; no++ {
			for mo := mc; mo < hi; mo++ {
				for ko := 0; ko < kt; ko++ {
					ops = append(ops, p.DXOp(mo, ko, no, nt))
				}
			}
		}
	}
	return ops
}

// PartialStationaryDXCols generates the dX GEMM with column-chunked
// partials (chunks over K): W is read once per layer, dY once per chunk;
// the live partials are M x chunkCols.
func PartialStationaryDXCols(p TileParams, chunkCols int) []Op {
	mt, kt, nt := p.Tiling.Counts(p.Dims)
	chunkCols = clampChunk(chunkCols, kt)
	ops := make([]Op, 0, mt*kt*nt)
	for kc := 0; kc < kt; kc += chunkCols {
		hi := min(kc+chunkCols, kt)
		for no := 0; no < nt; no++ {
			for ko := kc; ko < hi; ko++ {
				for mo := 0; mo < mt; mo++ {
					ops = append(ops, p.DXOp(mo, ko, no, nt))
				}
			}
		}
	}
	return ops
}

// PartialStationaryDW generates the dW GEMM with row-chunked partials
// (chunks over K): X is read once per layer, dY once per chunk; the live
// partials are chunkRows x N.
func PartialStationaryDW(p TileParams, chunkRows int) []Op {
	mt, kt, nt := p.Tiling.Counts(p.Dims)
	chunkRows = clampChunk(chunkRows, kt)
	ops := make([]Op, 0, mt*kt*nt)
	for kc := 0; kc < kt; kc += chunkRows {
		hi := min(kc+chunkRows, kt)
		for mo := 0; mo < mt; mo++ {
			for ko := kc; ko < hi; ko++ {
				for no := 0; no < nt; no++ {
					ops = append(ops, p.DWOp(ko, no, mo, mt))
				}
			}
		}
	}
	return ops
}

// PartialStationaryDWCols generates the dW GEMM with column-chunked
// partials (chunks over N): dY is read once per layer, X once per chunk;
// the live partials are K x chunkCols.
func PartialStationaryDWCols(p TileParams, chunkCols int) []Op {
	mt, kt, nt := p.Tiling.Counts(p.Dims)
	chunkCols = clampChunk(chunkCols, nt)
	ops := make([]Op, 0, mt*kt*nt)
	for nc := 0; nc < nt; nc += chunkCols {
		hi := min(nc+chunkCols, nt)
		for mo := 0; mo < mt; mo++ {
			for no := nc; no < hi; no++ {
				for ko := 0; ko < kt; ko++ {
					ops = append(ops, p.DWOp(ko, no, mo, mt))
				}
			}
		}
	}
	return ops
}
