package schedule

import (
	"testing"
	"testing/quick"

	"igosim/internal/config"
	"igosim/internal/dram"
	"igosim/internal/tensor"
)

func testParams(d tensor.Dims, t Tiling) TileParams {
	return TileParams{Dims: d, Tiling: t, ElemBytes: 4, Layer: 3}
}

func TestTilingCounts(t *testing.T) {
	tl := Tiling{Tm: 10, Tk: 7, Tn: 5}
	mt, kt, nt := tl.Counts(tensor.Dims{M: 25, K: 14, N: 11})
	if mt != 3 || kt != 2 || nt != 3 {
		t.Fatalf("counts = %d/%d/%d", mt, kt, nt)
	}
}

func TestOpCountMatchesCounts(t *testing.T) {
	tl := Tiling{Tm: 10, Tk: 7, Tn: 5}
	d := tensor.Dims{M: 25, K: 14, N: 11}
	if got := tl.OpCount(d); got != 3*2*3 {
		t.Fatalf("OpCount = %d", got)
	}
}

func TestChooseTilingFitsSPM(t *testing.T) {
	for _, cfg := range []config.NPU{config.SmallNPU(), config.LargeNPU(), config.GPULike()} {
		for _, d := range []tensor.Dims{
			{M: 25088, K: 576, N: 64},
			{M: 8, K: 25088, N: 4096},
			{M: 4096, K: 4096, N: 4096},
			{M: 1, K: 1, N: 1},
		} {
			tl := ChooseTiling(d, cfg)
			if tl.Tm <= 0 || tl.Tk <= 0 || tl.Tn <= 0 {
				t.Fatalf("%s %v: non-positive tiling %+v", cfg.Name, d, tl)
			}
			if tl.Tm > d.M || tl.Tn > d.N {
				t.Fatalf("%s %v: output tiles exceed dims %+v", cfg.Name, d, tl)
			}
			// Every single tile must fit in the SPM streaming half, or the
			// residency model cannot hold it.
			maxTile := int64(max(tl.Tm*tl.Tk, max(tl.Tk*tl.Tn, tl.Tm*tl.Tn))) * int64(cfg.ElemBytes)
			if maxTile > cfg.SPMBytes/2 {
				t.Fatalf("%s %v: tile of %d bytes exceeds half SPM", cfg.Name, d, maxTile)
			}
		}
	}
}

func TestTileBytesEdgeClipping(t *testing.T) {
	p := testParams(tensor.Dims{M: 25, K: 14, N: 11}, Tiling{Tm: 10, Tk: 7, Tn: 5})
	// Interior X tile: 10x7 elements.
	if got := p.XTile(0, 0).Bytes; got != 10*7*4 {
		t.Fatalf("interior X tile bytes = %d", got)
	}
	// Edge X tile: rows 20..24 (5), cols 7..13 (7).
	if got := p.XTile(2, 1).Bytes; got != 5*7*4 {
		t.Fatalf("edge X tile bytes = %d", got)
	}
	// Edge dY tile: rows 20..24 (5), cols 10 (1).
	if got := p.DYTile(2, 2).Bytes; got != 5*1*4 {
		t.Fatalf("edge dY tile bytes = %d", got)
	}
}

func TestXFactorScalesOnlyXAndDX(t *testing.T) {
	p := testParams(tensor.Dims{M: 100, K: 90, N: 80}, Tiling{Tm: 10, Tk: 9, Tn: 8})
	p.XFactor = 1.0 / 9
	full := int64(10 * 9 * 4)
	if got := p.XTile(0, 0).Bytes; got != full/9 {
		t.Fatalf("X tile bytes = %d, want %d", got, full/9)
	}
	if got := p.DXTile(0, 0).Bytes; got != full/9 {
		t.Fatalf("dX tile bytes = %d, want %d", got, full/9)
	}
	if got := p.WTile(0, 0).Bytes; got != int64(9*8*4) {
		t.Fatalf("W tile bytes = %d (must not scale)", got)
	}
	if got := p.DYTile(0, 0).Bytes; got != int64(10*8*4) {
		t.Fatalf("dY tile bytes = %d (must not scale)", got)
	}
}

func TestXFactorNeverZeroBytes(t *testing.T) {
	p := testParams(tensor.Dims{M: 2, K: 2, N: 2}, Tiling{Tm: 1, Tk: 1, Tn: 1})
	p.XFactor = 1e-9
	if p.XTile(0, 0).Bytes < 1 {
		t.Fatal("scaled tile bytes must stay positive")
	}
}

func TestTensorIDsDisjointAcrossLayers(t *testing.T) {
	a := testParams(tensor.Dims{M: 4, K: 4, N: 4}, Tiling{Tm: 2, Tk: 2, Tn: 2})
	b := a
	b.Layer = 4
	ids := map[uint16]bool{}
	for _, p := range []TileParams{a, b} {
		for _, tile := range []Tile{p.XTile(0, 0), p.WTile(0, 0), p.DYTile(0, 0), p.DXTile(0, 0), p.DWTile(0, 0), p.YTile(0, 0)} {
			key := tile.Key.Tensor<<3 | uint16(tile.Key.Class)
			if ids[key] {
				t.Fatalf("tensor id collision: %v", tile.Key)
			}
			ids[key] = true
		}
	}
}

func TestPartialIDsDisjoint(t *testing.T) {
	p := testParams(tensor.Dims{M: 4, K: 4, N: 4}, Tiling{Tm: 2, Tk: 2, Tn: 2})
	seen := map[uint16]bool{}
	for part := 0; part < MaxPartitions; part++ {
		p.Part = part
		for _, off := range []uint16{4, 5} { // idDX, idDW
			id := p.PartialID(off)
			if seen[id] {
				t.Fatalf("partial id collision at part %d off %d", part, off)
			}
			if id < partialBase {
				t.Fatalf("partial id %d below partialBase", id)
			}
			seen[id] = true
		}
	}
}

func TestPartialRedirection(t *testing.T) {
	p := testParams(tensor.Dims{M: 4, K: 4, N: 4}, Tiling{Tm: 2, Tk: 2, Tn: 2})
	p.DWPartial = true
	p.Part = 1
	dw := p.DWTile(0, 0)
	if dw.Key.Class != dram.ClassAcc {
		t.Fatalf("partial dW class = %v, want acc", dw.Key.Class)
	}
	p.DWPartial = false
	if p.DWTile(0, 0).Key.Class != dram.ClassDW {
		t.Fatal("non-partial dW must keep its class")
	}
}

func TestPartitionOffsetsInKeys(t *testing.T) {
	p := testParams(tensor.Dims{M: 4, K: 4, N: 4}, Tiling{Tm: 2, Tk: 2, Tn: 2})
	p.OffM, p.OffK, p.OffN = 3, 5, 7
	if k := p.XTile(1, 1).Key; k.Row != 4 || k.Col != 6 {
		t.Fatalf("X key = %+v", k)
	}
	if k := p.WTile(1, 1).Key; k.Row != 6 || k.Col != 8 {
		t.Fatalf("W key = %+v", k)
	}
	if k := p.DYTile(1, 1).Key; k.Row != 4 || k.Col != 8 {
		t.Fatalf("dY key = %+v", k)
	}
}

func TestBaselineStreamsVerify(t *testing.T) {
	p := testParams(tensor.Dims{M: 25, K: 14, N: 11}, Tiling{Tm: 10, Tk: 7, Tn: 5})
	for _, dxo := range []DXLoopOrder{DXOrderMK, DXOrderKM} {
		for _, dwo := range []DWLoopOrder{DWOrderKN, DWOrderNK} {
			s := BaselineBackwardOrdered(p, dxo, dwo)
			if err := VerifyBackward(p, s.Ops, false); err != nil {
				t.Errorf("orders %v/%v: %v", dxo, dwo, err)
			}
		}
	}
}

func TestChunkedStreamsVerify(t *testing.T) {
	p := testParams(tensor.Dims{M: 37, K: 23, N: 19}, Tiling{Tm: 8, Tk: 6, Tn: 4})
	mt, kt, nt := p.Tiling.Counts(p.Dims)
	for chunk := 1; chunk <= mt+1; chunk++ {
		dx := PartialStationaryDX(p, chunk)
		dw := PartialStationaryDW(p, min(chunk, kt))
		ops := append(append([]Op{}, dx...), dw...)
		if err := VerifyBackward(p, ops, false); err != nil {
			t.Fatalf("row-chunk %d: %v", chunk, err)
		}
	}
	for chunk := 1; chunk <= nt+1; chunk++ {
		dx := PartialStationaryDXCols(p, min(chunk, kt))
		dw := PartialStationaryDWCols(p, chunk)
		ops := append(append([]Op{}, dx...), dw...)
		if err := VerifyBackward(p, ops, false); err != nil {
			t.Fatalf("col-chunk %d: %v", chunk, err)
		}
	}
}

func TestForwardVerifies(t *testing.T) {
	p := testParams(tensor.Dims{M: 25, K: 14, N: 11}, Tiling{Tm: 10, Tk: 7, Tn: 5})
	if err := VerifyForward(p, Forward(p).Ops); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCatchesBrokenStreams(t *testing.T) {
	p := testParams(tensor.Dims{M: 8, K: 8, N: 8}, Tiling{Tm: 4, Tk: 4, Tn: 4})
	good := BaselineBackward(p).Ops

	// Dropping an op breaks the reduction count.
	if err := VerifyBackward(p, good[1:], false); err == nil {
		t.Fatal("missing op not detected")
	}
	// Clearing an OutLast leaves an unfinalised tile.
	bad := append([]Op{}, good...)
	for i := range bad {
		if bad[i].OutLast {
			bad[i].OutLast = false
			break
		}
	}
	if err := VerifyBackward(p, bad, false); err == nil {
		t.Fatal("missing OutLast not detected")
	}
	// Duplicating an OutFirst is caught.
	bad2 := append([]Op{}, good...)
	for i := range bad2 {
		if !bad2[i].OutFirst {
			bad2[i].OutFirst = true
			break
		}
	}
	if err := VerifyBackward(p, bad2, false); err == nil {
		t.Fatal("duplicate OutFirst not detected")
	}
}

func TestStreamsVerifyRandomDims(t *testing.T) {
	f := func(m, k, n, tm, tk, tn uint8) bool {
		d := tensor.Dims{M: int(m%40) + 1, K: int(k%40) + 1, N: int(n%40) + 1}
		tl := Tiling{
			Tm: min(int(tm%9)+1, d.M),
			Tk: min(int(tk%9)+1, d.K),
			Tn: min(int(tn%9)+1, d.N),
		}
		p := testParams(d, tl)
		if err := VerifyBackward(p, BaselineBackward(p).Ops, false); err != nil {
			return false
		}
		return VerifyForward(p, Forward(p).Ops) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSumOutputBytes(t *testing.T) {
	p := testParams(tensor.Dims{M: 8, K: 8, N: 8}, Tiling{Tm: 4, Tk: 4, Tn: 4})
	dx := BaselineDX(p)
	// dX outputs: the whole M x K tensor in FP32.
	if got := SumOutputBytes(dx); got != 8*8*4 {
		t.Fatalf("dX output bytes = %d", got)
	}
}

func TestMaxLayersEnforced(t *testing.T) {
	p := testParams(tensor.Dims{M: 2, K: 2, N: 2}, Tiling{Tm: 1, Tk: 1, Tn: 1})
	p.Layer = uint16(MaxLayers + 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range layer id")
		}
	}()
	p.XTile(0, 0)
}
