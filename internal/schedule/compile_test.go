package schedule

import (
	"reflect"
	"testing"

	"igosim/internal/dram"
	"igosim/internal/tensor"
)

func compileParams() TileParams {
	return TileParams{
		Dims:      tensor.Dims{M: 16, K: 16, N: 16},
		Tiling:    Tiling{Tm: 4, Tk: 4, Tn: 4},
		ElemBytes: 4,
		Layer:     1,
	}
}

// TestInternDenseFirstAppearance locks the ID assignment contract: dense,
// in first-appearance order, stable on re-interning.
func TestInternDenseFirstAppearance(t *testing.T) {
	c := NewCompiler()
	keys := []TileKey{
		{Class: dram.ClassDY, Tensor: 9, Row: 0, Col: 0},
		{Class: dram.ClassW, Tensor: 10, Row: 3, Col: 7},
		{Class: dram.ClassDY, Tensor: 9, Row: 0, Col: 1},
	}
	for i, k := range keys {
		if id := c.Intern(k); id != TileID(i) {
			t.Fatalf("Intern(%v) = %d, want %d", k, id, i)
		}
	}
	for i, k := range keys {
		if id := c.Intern(k); id != TileID(i) {
			t.Fatalf("re-Intern(%v) = %d, want %d", k, id, i)
		}
	}
	if c.NumTiles() != len(keys) {
		t.Fatalf("NumTiles = %d, want %d", c.NumTiles(), len(keys))
	}
	if got := c.Table().Keys; !reflect.DeepEqual(got, keys) {
		t.Fatalf("Table.Keys = %v, want %v", got, keys)
	}
}

// TestInternSurvivesRehash pushes the interner far past its initial table
// size; every previously assigned ID must still resolve afterwards.
func TestInternSurvivesRehash(t *testing.T) {
	c := NewCompiler()
	const n = 10_000
	keys := make([]TileKey, n)
	for i := range keys {
		keys[i] = TileKey{Class: dram.Class(i % 7), Tensor: uint16(i % 31), Row: int32(i), Col: int32(i / 3)}
		if id := c.Intern(keys[i]); id != TileID(i) {
			t.Fatalf("Intern #%d = %d", i, id)
		}
	}
	for i := range keys {
		if id := c.Intern(keys[i]); id != TileID(i) {
			t.Fatalf("after rehash: Intern #%d = %d", i, id)
		}
	}
}

// TestCompilerReset checks pooled reuse: after Reset the compiler must
// reproduce a fresh compiler's program exactly.
func TestCompilerReset(t *testing.T) {
	p := compileParams()
	want := Compile(BaselineBackward(p))

	c := NewCompiler()
	// Warm with a different symbol space, then reset.
	c.CompileOps(PartialStationaryDW(p, 2))
	c.Reset()
	code := c.CompileOps(BaselineBackward(p).Ops)
	if !reflect.DeepEqual(code, want.Code) {
		t.Fatal("post-Reset code differs from a fresh compiler's")
	}
	if !reflect.DeepEqual(c.Table(), want.Table) {
		t.Fatal("post-Reset table differs from a fresh compiler's")
	}
}

// TestLowerFlags checks the protocol and free-dY bits fold correctly.
func TestLowerFlags(t *testing.T) {
	p := compileParams()
	mt, kt, nt := p.Tiling.Counts(p.Dims)
	c := NewCompiler()

	first := p.DXOp(0, 0, 0, nt)
	co := c.Lower(&first)
	if co.Flags&FlagOutFirst == 0 || co.Flags&FlagOutLast != 0 {
		t.Errorf("dX first accumulation flags = %b", co.Flags)
	}
	if co.Flags&(FlagFreeDYA|FlagFreeDYB) != 0 {
		t.Errorf("dX op carries free-dY flags: %b", co.Flags)
	}
	if co.Kind != KindDX || co.OutClass != dram.ClassDX && co.OutClass != dram.ClassAcc {
		t.Errorf("dX lowering kind/class: %+v", co)
	}

	last := p.DWOp(kt-1, nt-1, mt-1, mt)
	cw := c.Lower(&last)
	if cw.Flags&FlagOutLast == 0 {
		t.Errorf("dW final accumulation flags = %b", cw.Flags)
	}
	// Exactly one dW operand is the dY tile.
	freeBits := cw.Flags & (FlagFreeDYA | FlagFreeDYB)
	if freeBits != FlagFreeDYA && freeBits != FlagFreeDYB {
		t.Errorf("dW free-dY flags = %b, want exactly one operand marked", cw.Flags)
	}
	wantFree := cw.AClass
	if freeBits == FlagFreeDYB {
		wantFree = cw.BClass
	}
	if wantFree != dram.ClassDY {
		t.Errorf("free-dY flag marks a %v operand", wantFree)
	}

	// Byte sizes and IDs must round-trip through the table.
	if co.ABytes != first.A.Bytes || co.BBytes != first.B.Bytes || co.OutBytes != first.Out.Bytes {
		t.Errorf("byte sizes not preserved: %+v vs %+v", co, first)
	}
	tbl := c.Table()
	if tbl.Keys[co.A] != first.A.Key || tbl.Keys[co.B] != first.B.Key || tbl.Keys[co.Out] != first.Out.Key {
		t.Error("interned IDs do not resolve back to the op's keys")
	}
}

// TestCompileKernelBounds checks kernel spans tile the code exactly and
// share one symbol space.
func TestCompileKernelBounds(t *testing.T) {
	p := compileParams()
	dx := Schedule{Name: "dx", Ops: BaselineDX(p)}
	dw := Schedule{Name: "dw", Ops: BaselineDW(p)}
	prog := Compile(dx, dw)

	if prog.Ops() != len(dx.Ops)+len(dw.Ops) {
		t.Fatalf("Ops = %d, want %d", prog.Ops(), len(dx.Ops)+len(dw.Ops))
	}
	if len(prog.Kernels) != 2 {
		t.Fatalf("Kernels = %d, want 2", len(prog.Kernels))
	}
	if prog.Kernels[0] != (Kernel{Name: "dx", Start: 0, End: len(dx.Ops)}) {
		t.Errorf("kernel 0 = %+v", prog.Kernels[0])
	}
	if prog.Kernels[1] != (Kernel{Name: "dw", Start: len(dx.Ops), End: prog.Ops()}) {
		t.Errorf("kernel 1 = %+v", prog.Kernels[1])
	}
	// dY tiles appear in both kernels; shared interning must give the dW
	// kernel IDs below the dX kernel's watermark for those tiles.
	dyShared := false
	for _, op := range prog.Code[prog.Kernels[1].Start:] {
		if op.AClass == dram.ClassDY || op.BClass == dram.ClassDY {
			dyShared = true
			break
		}
	}
	if !dyShared {
		t.Error("no dY operand found in the dW kernel")
	}
}

// TestCompileStreamsMatchesCompile checks the stream-compiled program is
// identical to the slice-compiled one.
func TestCompileStreamsMatchesCompile(t *testing.T) {
	p := compileParams()
	want := Compile(
		Schedule{Name: "dx", Ops: PartialStationaryDX(p, 2)},
		Schedule{Name: "dw", Ops: PartialStationaryDWCols(p, 2)},
	)
	got := CompileStreams(
		StreamKernel{Name: "dx", Ops: PartialStationaryDXStream(p, 2)},
		StreamKernel{Name: "dw", Ops: PartialStationaryDWColsStream(p, 2)},
	)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("CompileStreams differs from Compile")
	}
}
