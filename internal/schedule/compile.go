package schedule

import (
	"fmt"

	"igosim/internal/dram"
)

// This file lowers tile-op streams into a dense, execution-ready program
// form (DESIGN.md §3g). The interpreter (sim.Engine) resolves every access
// through map-keyed residency lookups on the 16-byte TileKey; the compiled
// form interns each distinct key into a small integer once, so the engine
// can run against flat arrays with zero map traffic and zero allocations in
// steady state. Everything derivable from the op alone — byte sizes, tensor
// classes, the OutFirst/OutLast protocol bits, whether an operand is a dY
// read of a dW op (the Section 3.3 free-dY predicate) — is precomputed at
// compile time into CompiledOp.

// TileID is a dense per-program tile identifier assigned by interning
// TileKeys in first-appearance order.
type TileID int32

// OpFlags packs a compiled op's boolean properties.
type OpFlags uint8

const (
	// FlagOutFirst marks the first accumulation into Out (allocate in SPM
	// without fetching).
	FlagOutFirst OpFlags = 1 << iota
	// FlagOutLast marks the final accumulation (write back and free).
	FlagOutLast
	// FlagFreeDYA marks operand A as a dY read issued by a dW-side op —
	// free under Options.FreeDYOnDW (Section 3.3 limit study).
	FlagFreeDYA
	// FlagFreeDYB is FlagFreeDYA for operand B.
	FlagFreeDYB
)

// CompiledOp is one lowered tile op: interned operand/output IDs, byte
// sizes and tensor classes resolved at compile time, and the protocol
// booleans folded into Flags. The GEMM tile dimensions stay for the
// systolic cost leaf (precomputed per program by the engine) and tracing.
type CompiledOp struct {
	ABytes, BBytes, OutBytes int64
	A, B, Out                TileID
	Tm, Tk, Tn               int32
	AClass, BClass, OutClass dram.Class
	Kind                     Kind
	Flags                    OpFlags
}

// Kernel names one schedule's span [Start, End) within a program's code.
// Kernels are separate GEMM invocations: the engine flushes the scratchpad
// between them, exactly like sim.RunSchedules does for []Schedule.
type Kernel struct {
	Name       string
	Start, End int
}

// TileTable is a program's symbol table: Keys[id] is the TileKey interned
// as TileID id. The engine only needs its length (to size the residency
// arrays); the keys themselves serve tracing and debugging.
type TileTable struct {
	Keys []TileKey
}

// Len returns the number of interned tiles.
func (t TileTable) Len() int { return len(t.Keys) }

// Program is a compiled schedule sequence ready for sim.CompiledEngine.
type Program struct {
	Code    []CompiledOp
	Kernels []Kernel
	Table   TileTable
}

// Ops returns the total op count.
func (p *Program) Ops() int { return len(p.Code) }

// Compiler interns tile keys and lowers ops. One compiler builds one symbol
// space: compiling several streams through the same compiler makes their
// TileIDs consistent, which is what the shared-scratchpad multi-core path
// needs (a dY tile loaded by one core must carry the same ID in every
// core's stream).
//
// Interning runs on an open-addressed hash table instead of a Go map: the
// table is a flat []int32 that survives Reset, so a pooled compiler interns
// with zero allocations and no rehashing once warm — compilation is on the
// per-layer hot path of every simulation.
type Compiler struct {
	keys  []TileKey
	table []int32 // open-addressed; index into keys, or freeSlot
	mask  uint32
}

// freeSlot marks an empty interning-table slot.
const freeSlot = int32(-1)

// NewCompiler returns an empty compiler.
func NewCompiler() *Compiler {
	c := &Compiler{}
	c.rehash(2048)
	return c
}

// maxRetainedTable caps the probe-table size a pooled compiler keeps
// across Reset. Clearing the table is O(len(table)), so one giant program
// must not tax every later small compilation with a multi-MiB clear —
// oversized tables are dropped and regrown on demand instead.
const maxRetainedTable = 1 << 15

// Reset empties the symbol table while keeping its capacity (up to
// maxRetainedTable), so a pooled compiler reinterns a same-sized program
// without allocating.
func (c *Compiler) Reset() {
	c.keys = c.keys[:0]
	if len(c.table) > maxRetainedTable {
		c.table = nil
		c.rehash(2048)
		return
	}
	for i := range c.table {
		c.table[i] = freeSlot
	}
}

func (c *Compiler) rehash(size int) {
	if cap(c.table) >= size {
		c.table = c.table[:size]
	} else {
		c.table = make([]int32, size)
	}
	c.mask = uint32(size - 1)
	for i := range c.table {
		c.table[i] = freeSlot
	}
	for i := range c.keys {
		h := hashTileKey(c.keys[i]) & c.mask
		for c.table[h] != freeSlot {
			h = (h + 1) & c.mask
		}
		c.table[h] = int32(i)
	}
}

// hashTileKey packs the 12 key bytes into one word and mixes it
// (splitmix64 finalizer) — cheaper than the runtime's generic struct
// hashing and good enough for open addressing.
func hashTileKey(k TileKey) uint32 {
	x := uint64(k.Class)<<48 | uint64(k.Tensor)<<32 | uint64(uint32(k.Row))
	x ^= uint64(uint32(k.Col)) << 21
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return uint32(x)
}

// Intern returns the TileID for k, assigning the next dense ID on first
// appearance.
//
//lint:hotpath
func (c *Compiler) Intern(k TileKey) TileID {
	h := hashTileKey(k) & c.mask
	for {
		idx := c.table[h]
		if idx == freeSlot {
			break
		}
		if c.keys[idx] == k {
			return TileID(idx)
		}
		h = (h + 1) & c.mask
	}
	id := len(c.keys)
	if id != int(int32(id)) {
		panic(fmt.Sprintf("schedule: tile table overflows TileID at %d entries", id))
	}
	// Keep the load factor under 3/4; rehashing moves h, so redo the probe.
	if 4*(id+1) > 3*len(c.table) {
		c.rehash(2 * len(c.table))
		h = hashTileKey(k) & c.mask
		for c.table[h] != freeSlot {
			h = (h + 1) & c.mask
		}
	}
	c.table[h] = int32(id)
	c.keys = append(c.keys, k)
	return TileID(id)
}

// NumTiles returns the number of tiles interned so far.
func (c *Compiler) NumTiles() int { return len(c.keys) }

// Table snapshots the symbol table. Valid for all code compiled so far;
// take it after the last Compile*/Intern call.
func (c *Compiler) Table() TileTable { return TileTable{Keys: c.keys} }

// DetachTable returns the symbol table and transfers ownership of the key
// storage to the caller: the compiler forgets its keys, so a pooled
// compiler can hand a retained program its table without aliasing. The
// probe table still references the detached keys until the next Reset,
// which every pooled reuse performs first.
func (c *Compiler) DetachTable() TileTable {
	t := TileTable{Keys: c.keys}
	c.keys = nil
	return t
}

// Lower compiles a single op.
func (c *Compiler) Lower(op *Op) CompiledOp {
	co := CompiledOp{
		ABytes:   op.A.Bytes,
		BBytes:   op.B.Bytes,
		OutBytes: op.Out.Bytes,
		A:        c.Intern(op.A.Key),
		B:        c.Intern(op.B.Key),
		Out:      c.Intern(op.Out.Key),
		Tm:       int32(op.Tm),
		Tk:       int32(op.Tk),
		Tn:       int32(op.Tn),
		AClass:   op.A.Key.Class,
		BClass:   op.B.Key.Class,
		OutClass: op.Out.Key.Class,
		Kind:     op.Kind,
	}
	if op.OutFirst {
		co.Flags |= FlagOutFirst
	}
	if op.OutLast {
		co.Flags |= FlagOutLast
	}
	if op.Kind == KindDW {
		if op.A.Key.Class == dram.ClassDY {
			co.Flags |= FlagFreeDYA
		}
		if op.B.Key.Class == dram.ClassDY {
			co.Flags |= FlagFreeDYB
		}
	}
	return co
}

// CompileOps lowers a materialized op slice.
func (c *Compiler) CompileOps(ops []Op) []CompiledOp {
	code := make([]CompiledOp, len(ops))
	for i := range ops {
		code[i] = c.Lower(&ops[i])
	}
	return code
}

// CompileStream lowers a stream without materializing it: the only
// per-stream allocation is the compiled code itself.
func (c *Compiler) CompileStream(s OpStream) []CompiledOp {
	var code []CompiledOp
	s(func(op *Op) bool {
		code = append(code, c.Lower(op))
		return true
	})
	return code
}

// Compile lowers a schedule sequence into one program. Each schedule
// becomes a kernel (flushed boundary); tile IDs are shared across kernels
// so cross-kernel aliasing matches the interpreter's key-based residency.
func Compile(scheds ...Schedule) Program {
	c := NewCompiler()
	var n int
	for _, s := range scheds {
		n += len(s.Ops)
	}
	prog := Program{
		Code:    make([]CompiledOp, 0, n),
		Kernels: make([]Kernel, 0, len(scheds)),
	}
	for _, s := range scheds {
		start := len(prog.Code)
		for i := range s.Ops {
			prog.Code = append(prog.Code, c.Lower(&s.Ops[i]))
		}
		prog.Kernels = append(prog.Kernels, Kernel{Name: s.Name, Start: start, End: len(prog.Code)})
	}
	prog.Table = c.Table()
	return prog
}

// StreamKernel names one kernel's op stream for CompileStreams.
type StreamKernel struct {
	Name string
	Ops  OpStream
}

// CompileStreams is Compile for pull-based generators: the program is built
// directly from the streams, so peak memory never holds a materialized
// []Op.
func CompileStreams(kernels ...StreamKernel) Program {
	c := NewCompiler()
	prog := Program{Kernels: make([]Kernel, 0, len(kernels))}
	for _, k := range kernels {
		start := len(prog.Code)
		k.Ops(func(op *Op) bool {
			prog.Code = append(prog.Code, c.Lower(op))
			return true
		})
		prog.Kernels = append(prog.Kernels, Kernel{Name: k.Name, Start: start, End: len(prog.Code)})
	}
	prog.Table = c.Table()
	return prog
}
