package schedule

import (
	"testing"

	"igosim/internal/tensor"
)

func TestClampChunk(t *testing.T) {
	cases := []struct {
		chunk, total, want int
	}{
		{-5, 7, 1}, // negative chunks degrade to one tile
		{0, 7, 1},  // zero is not a valid chunk
		{1, 7, 1},  // smallest legal chunk passes through
		{3, 7, 3},  // in-range chunks pass through
		{7, 7, 7},  // chunk == total is the single-chunk case
		{12, 7, 7}, // oversized chunks clamp to the whole grid
		{0, 1, 1},  // degenerate one-tile grid
		{99, 1, 1}, // oversized chunk on a one-tile grid
		{-1, 1, 1}, // negative chunk on a one-tile grid
	}
	for _, c := range cases {
		if got := clampChunk(c.chunk, c.total); got != c.want {
			t.Errorf("clampChunk(%d, %d) = %d, want %d", c.chunk, c.total, got, c.want)
		}
	}
}

// opMultiset counts order-free op identities: everything about an op except
// its stream position and its OutFirst/OutLast placement, which legitimately
// depend on the loop order.
func opMultiset(ops []Op) map[Op]int {
	m := make(map[Op]int, len(ops))
	for _, op := range ops {
		op.OutFirst, op.OutLast = false, false
		m[op]++
	}
	return m
}

func equalMultiset(a, b map[Op]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

// TestPartialStationaryChunkExtremes drives all four chunked generators
// through every degenerate chunk size — negative, zero, one, the exact grid
// extent, and past it — and requires each resulting stream to (a) pass the
// full backward verifier when combined with its sibling gradient and (b) be
// a permutation of the unchunked baseline's op multiset: chunking may only
// reorder work, never add, drop or resize it.
func TestPartialStationaryChunkExtremes(t *testing.T) {
	// Dims chosen so every grid extent differs (mt=5, kt=4, nt=3) and edge
	// tiles exist in all three dimensions.
	p := testParams(tensor.Dims{M: 33, K: 22, N: 11}, Tiling{Tm: 7, Tk: 6, Tn: 4})
	mt, kt, nt := p.Tiling.Counts(p.Dims)

	baseDX := opMultiset(BaselineDX(p))
	baseDW := opMultiset(BaselineDW(p))

	gens := []struct {
		name  string
		total int // the grid extent this generator chunks over
		gen   func(TileParams, int) []Op
		base  map[Op]int
	}{
		{"PartialStationaryDX/rows", mt, PartialStationaryDX, baseDX},
		{"PartialStationaryDXCols", kt, PartialStationaryDXCols, baseDX},
		{"PartialStationaryDW/rows", kt, PartialStationaryDW, baseDW},
		{"PartialStationaryDWCols", nt, PartialStationaryDWCols, baseDW},
	}
	for _, g := range gens {
		for _, chunk := range []int{-1, 0, 1, g.total - 1, g.total, g.total + 5} {
			ops := g.gen(p, chunk)
			if len(ops) != mt*kt*nt {
				t.Errorf("%s chunk %d: %d ops, want %d", g.name, chunk, len(ops), mt*kt*nt)
				continue
			}
			if !equalMultiset(opMultiset(ops), g.base) {
				t.Errorf("%s chunk %d: op multiset differs from unchunked baseline", g.name, chunk)
			}
		}
	}

	// Combined dx+dw streams across mismatched chunk sizes must still form
	// a valid backward pass.
	for _, chunk := range []int{-1, 0, 1, 2, mt, kt, nt, mt + kt + nt} {
		for _, combo := range []struct {
			name string
			ops  []Op
		}{
			{"rows", append(PartialStationaryDX(p, chunk), PartialStationaryDW(p, chunk)...)},
			{"cols", append(PartialStationaryDXCols(p, chunk), PartialStationaryDWCols(p, chunk)...)},
			{"mixed", append(PartialStationaryDX(p, chunk), PartialStationaryDWCols(p, chunk)...)},
		} {
			if err := VerifyBackward(p, combo.ops, false); err != nil {
				t.Errorf("%s chunk %d: %v", combo.name, chunk, err)
			}
		}
	}
}

// TestPartialStationarySingleTileGrid pins the fully degenerate layer: a
// one-tile GEMM must come out of every chunked generator as exactly one op
// per gradient, marked both OutFirst and OutLast.
func TestPartialStationarySingleTileGrid(t *testing.T) {
	p := testParams(tensor.Dims{M: 3, K: 2, N: 5}, Tiling{Tm: 8, Tk: 8, Tn: 8})
	for _, chunk := range []int{-1, 0, 1, 9} {
		for name, ops := range map[string][]Op{
			"dx-rows": PartialStationaryDX(p, chunk),
			"dx-cols": PartialStationaryDXCols(p, chunk),
			"dw-rows": PartialStationaryDW(p, chunk),
			"dw-cols": PartialStationaryDWCols(p, chunk),
		} {
			if len(ops) != 1 {
				t.Fatalf("%s chunk %d: %d ops, want 1", name, chunk, len(ops))
			}
			if !ops[0].OutFirst || !ops[0].OutLast {
				t.Errorf("%s chunk %d: single op not both OutFirst and OutLast: %+v", name, chunk, ops[0])
			}
		}
	}
}
