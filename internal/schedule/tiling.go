package schedule

import (
	"igosim/internal/config"
	"igosim/internal/tensor"
)

// ChooseTiling picks tile dimensions for one layer GEMM following the
// baseline tiling strategy of the prior studies the paper cites (GAMMA,
// Moon et al.): output tiles match the PE array footprint, and the
// reduction-dimension tile is grown as large as the scratchpad working-set
// budget allows, which minimises partial-sum revisits and operand re-sweeps.
//
// The budget reserves the streaming half of the SPM (double buffering) and
// requires roughly four op working sets (A, B and output tiles) to be
// co-resident, leaving room for the cross-op reuse the baseline already
// exploits.
func ChooseTiling(d tensor.Dims, cfg config.NPU) Tiling {
	return chooseTiling(d, cfg.ArrayRows, cfg.ArrayCols, cfg.SPMBytes, cfg.ElemBytes, cfg.TkCap)
}

// DefaultTkCap is the contraction-tile cap used when the configuration does
// not set one (config.NPU.TkCap == 0).
const DefaultTkCap = 256

func chooseTiling(d tensor.Dims, rows, cols int, spmBytes int64, elemBytes, tkCap int) Tiling {
	tm := min(d.M, rows)
	tn := min(d.N, cols)

	budgetElems := spmBytes / int64(2*elemBytes) // streaming half, in elements
	perSet := budgetElems / 4                    // ~4 op working sets resident

	tkMax := (perSet - int64(tm)*int64(tn)) / int64(tm+tn)
	const tkFloor = 16
	// The default cap keeps the contraction tile fine enough that the K
	// dimension can be split across partitions and cores (Section 5's
	// ifmap-sharing) without degenerating to one or two giant tiles.
	if tkCap <= 0 {
		tkCap = DefaultTkCap
	}
	tk := int(tkMax)
	if tk < tkFloor {
		tk = tkFloor
	}
	if tk > tkCap {
		tk = tkCap
	}
	if tk > d.K {
		tk = d.K
	}
	// Round to a multiple of 16 for realistic DMA alignment, unless the
	// dimension itself is smaller.
	if tk >= 32 {
		tk -= tk % 16
	}
	return Tiling{Tm: tm, Tk: tk, Tn: tn}
}

// OpCount returns the number of tile ops one gradient GEMM generates under
// tiling t — both backward GEMMs and the forward GEMM share this count, the
// basis of the paper's "no extra computation" property.
func (t Tiling) OpCount(d tensor.Dims) int {
	mt, kt, nt := t.Counts(d)
	return mt * kt * nt
}
