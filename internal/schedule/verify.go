package schedule

import (
	"fmt"
	"sort"

	"igosim/internal/tensor"
)

// sortedTileKeys returns m's keys in (Class, Tensor, Row, Col) order, so
// verification errors name the same offending tile on every run regardless
// of map iteration order.
func sortedTileKeys[V any](m map[TileKey]V) []TileKey {
	keys := make([]TileKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.Tensor != b.Tensor {
			return a.Tensor < b.Tensor
		}
		if a.Row != b.Row {
			return a.Row < b.Row
		}
		return a.Col < b.Col
	})
	return keys
}

// VerifyBackward checks the structural invariants every backward-pass op
// stream must satisfy for the layer described by p, regardless of access
// order or partitioning:
//
//   - the stream contains exactly mt*kt*nt dX ops and mt*kt*nt dW ops
//     (the transformations never add or remove computation);
//   - every output tile sees exactly one OutFirst, exactly one OutLast, and
//     exactly one accumulation step per reduction index;
//   - OutFirst precedes every other touch of its tile and OutLast follows
//     them (accumulation order is free, the endpoints are not);
//   - all tile transfer sizes are positive.
//
// dwOnly relaxes the dX-op expectation for first-layer schedules.
func VerifyBackward(p TileParams, ops []Op, dwOnly bool) error {
	mt, kt, nt := p.Tiling.Counts(p.Dims)
	wantDX := mt * kt * nt
	if dwOnly {
		wantDX = 0
	}
	wantDW := mt * kt * nt

	type state struct {
		touches   int
		first     bool
		last      bool
		lastSeen  bool
		firstSeen bool
	}
	acc := make(map[TileKey]*state)
	var ndx, ndw int

	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case KindDX:
			ndx++
		case KindDW:
			ndw++
		default:
			return fmt.Errorf("schedule: op %d has kind %v in a backward stream", i, op.Kind)
		}
		if op.A.Bytes <= 0 || op.B.Bytes <= 0 || op.Out.Bytes <= 0 {
			return fmt.Errorf("schedule: op %d has non-positive tile bytes", i)
		}
		if op.Tm <= 0 || op.Tk <= 0 || op.Tn <= 0 {
			return fmt.Errorf("schedule: op %d has invalid tile dims %dx%dx%d", i, op.Tm, op.Tk, op.Tn)
		}
		s := acc[op.Out.Key]
		if s == nil {
			s = &state{}
			acc[op.Out.Key] = s
		}
		if s.lastSeen {
			return fmt.Errorf("schedule: op %d touches output %v after its OutLast", i, op.Out.Key)
		}
		if op.OutFirst {
			if s.firstSeen {
				return fmt.Errorf("schedule: output %v has two OutFirst ops", op.Out.Key)
			}
			if s.touches != 0 {
				return fmt.Errorf("schedule: output %v touched before its OutFirst", op.Out.Key)
			}
			s.firstSeen = true
		} else if !s.firstSeen {
			return fmt.Errorf("schedule: output %v accumulated before OutFirst", op.Out.Key)
		}
		if op.OutLast {
			s.lastSeen = true
		}
		s.touches++
	}

	if ndx != wantDX {
		return fmt.Errorf("schedule: %d dX ops, want %d", ndx, wantDX)
	}
	if ndw != wantDW {
		return fmt.Errorf("schedule: %d dW ops, want %d", ndw, wantDW)
	}
	for _, key := range sortedTileKeys(acc) {
		if !acc[key].lastSeen {
			return fmt.Errorf("schedule: output %v never finalised", key)
		}
	}

	// Validate reduction counts per output tile by kind: each dX tile
	// accumulates over nt steps, each dW tile over mt.
	counts := make(map[TileKey]int)
	kinds := make(map[TileKey]Kind)
	for i := range ops {
		counts[ops[i].Out.Key]++
		kinds[ops[i].Out.Key] = ops[i].Kind
	}
	for _, key := range sortedTileKeys(counts) {
		want := nt
		if kinds[key] == KindDW {
			want = mt
		}
		if n := counts[key]; n != want {
			return fmt.Errorf("schedule: output %v has %d accumulation steps, want %d", key, n, want)
		}
	}
	return nil
}

// VerifyForward checks the forward-pass stream invariants.
func VerifyForward(p TileParams, ops []Op) error {
	mt, kt, nt := p.Tiling.Counts(p.Dims)
	if len(ops) != mt*kt*nt {
		return fmt.Errorf("schedule: %d forward ops, want %d", len(ops), mt*kt*nt)
	}
	counts := make(map[TileKey]int)
	for i := range ops {
		if ops[i].Kind != KindFwd {
			return fmt.Errorf("schedule: op %d is %v in a forward stream", i, ops[i].Kind)
		}
		counts[ops[i].Out.Key]++
	}
	for _, key := range sortedTileKeys(counts) {
		if n := counts[key]; n != kt {
			return fmt.Errorf("schedule: forward output %v has %d steps, want %d", key, n, kt)
		}
	}
	return nil
}

// SumOutputBytes returns the total bytes of distinct output tiles in a
// stream — useful for checking writeback traffic expectations.
func SumOutputBytes(ops []Op) int64 {
	seen := make(map[TileKey]int64)
	for i := range ops {
		seen[ops[i].Out.Key] = ops[i].Out.Bytes
	}
	var sum int64
	for _, b := range seen {
		sum += b
	}
	return sum
}

// Dims echoes tensor.Dims for callers that only import schedule.
type Dims = tensor.Dims
