package schedule

import (
	"reflect"
	"testing"

	"igosim/internal/tensor"
)

// streamGens enumerates every pull-based generator with its materializing
// counterpart, on a grid with edge tiles in all three dimensions.
func streamGens(p TileParams) []struct {
	name   string
	stream OpStream
	eager  []Op
} {
	return []struct {
		name   string
		stream OpStream
		eager  []Op
	}{
		{"Forward", ForwardStream(p), Forward(p).Ops},
		{"BaselineDX/MK", BaselineDXStream(p, DXOrderMK), BaselineDXOrdered(p, DXOrderMK)},
		{"BaselineDX/KM", BaselineDXStream(p, DXOrderKM), BaselineDXOrdered(p, DXOrderKM)},
		{"BaselineDW/KN", BaselineDWStream(p, DWOrderKN), BaselineDWOrdered(p, DWOrderKN)},
		{"BaselineDW/NK", BaselineDWStream(p, DWOrderNK), BaselineDWOrdered(p, DWOrderNK)},
		{"Backward", BaselineBackwardStream(p, DXOrderMK, DWOrderKN), BaselineBackwardOrdered(p, DXOrderMK, DWOrderKN).Ops},
		{"PartialStationaryDX", PartialStationaryDXStream(p, 2), PartialStationaryDX(p, 2)},
		{"PartialStationaryDXCols", PartialStationaryDXColsStream(p, 2), PartialStationaryDXCols(p, 2)},
		{"PartialStationaryDW", PartialStationaryDWStream(p, 2), PartialStationaryDW(p, 2)},
		{"PartialStationaryDWCols", PartialStationaryDWColsStream(p, 2), PartialStationaryDWCols(p, 2)},
	}
}

func streamParams() TileParams {
	return testParams(tensor.Dims{M: 33, K: 22, N: 11}, Tiling{Tm: 7, Tk: 6, Tn: 4})
}

// TestStreamDrainMatchesEager drains every stream generator and requires
// exact sequence equality with its materializing counterpart, plus multiset
// equality with the order-free baseline of the same GEMM — chunking and
// streaming may reorder nothing relative to their eager forms, and never
// add, drop or resize work.
func TestStreamDrainMatchesEager(t *testing.T) {
	p := streamParams()
	for _, g := range streamGens(p) {
		got := Collect(g.stream, 0)
		if !reflect.DeepEqual(got, g.eager) {
			t.Errorf("%s: stream drain differs from eager generator", g.name)
			continue
		}
		want := p.OpCount()
		if g.name == "Backward" {
			want *= 2 // dX and dW GEMMs concatenated
		}
		if len(got) != want {
			t.Errorf("%s: %d ops, want %d", g.name, len(got), want)
		}
		if !equalMultiset(opMultiset(got), opMultiset(g.eager)) {
			t.Errorf("%s: op multiset differs", g.name)
		}
	}
}

// TestStreamEarlyAbort stops each stream mid-flight: the yielded prefix
// must match the eager slice element for element, and the generator must
// stop immediately (no further yields after false).
func TestStreamEarlyAbort(t *testing.T) {
	p := streamParams()
	for _, g := range streamGens(p) {
		for _, stop := range []int{0, 1, len(g.eager) / 2, len(g.eager) - 1} {
			var got []Op
			calls := 0
			g.stream(func(op *Op) bool {
				calls++
				if len(got) == stop {
					return false
				}
				got = append(got, *op)
				return true
			})
			if calls != stop+1 {
				t.Errorf("%s stop=%d: generator yielded %d times after abort, want %d",
					g.name, stop, calls, stop+1)
			}
			if !reflect.DeepEqual(got, append([]Op(nil), g.eager[:stop]...)) {
				t.Errorf("%s stop=%d: prefix differs from eager generator", g.name, stop)
			}
		}
	}
}

// TestStreamRestartable drains each stream twice: OpStream values are
// re-iterable (no consumed state, no pooled buffers to leak), so both
// drains must be identical — including after an aborted drain in between.
func TestStreamRestartable(t *testing.T) {
	p := streamParams()
	for _, g := range streamGens(p) {
		first := Collect(g.stream, p.OpCount())
		// Aborted drain in the middle must not affect the next full drain.
		g.stream(func(op *Op) bool { return false })
		second := Collect(g.stream, 0)
		if !reflect.DeepEqual(first, second) {
			t.Errorf("%s: second drain differs from first", g.name)
		}
	}
}

// TestConcat checks kernel concatenation, including abort propagation
// across the boundary.
func TestConcat(t *testing.T) {
	p := streamParams()
	dx := BaselineDXStream(p, DXOrderMK)
	dw := BaselineDWStream(p, DWOrderKN)
	got := Collect(Concat(dx, dw), 0)
	want := append(BaselineDXOrdered(p, DXOrderMK), BaselineDWOrdered(p, DWOrderKN)...)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("Concat drain differs from concatenated eager slices")
	}

	// Abort inside the first stream must prevent the second from starting.
	count := 0
	Concat(dx, dw)(func(op *Op) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("Concat yielded %d ops after abort, want 3", count)
	}

	if got := Collect(Concat(), 4); len(got) != 0 {
		t.Fatalf("empty Concat yielded %d ops", len(got))
	}
}

// TestCollectSizeHint checks Collect allocates exactly once when the hint
// is right and still works when it is wrong.
func TestCollectSizeHint(t *testing.T) {
	p := streamParams()
	s := BaselineDXStream(p, DXOrderMK)
	exact := Collect(s, p.OpCount())
	if len(exact) != cap(exact) {
		t.Errorf("exact hint: len %d != cap %d", len(exact), cap(exact))
	}
	under := Collect(s, 1)
	over := Collect(s, 10*len(exact))
	if !reflect.DeepEqual(under, exact) || !reflect.DeepEqual(over, exact) {
		t.Error("wrong hints changed the collected ops")
	}
}
