module igosim

go 1.22
